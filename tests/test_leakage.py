"""Leakage contracts: each engine's manager-visible transcript must
stay within its declared profile, and non-plaintext engines must
produce shape-indistinguishable transcripts for different secrets.
"""

import pytest

from repro.core.federated import MPCVerifier, TokenVerifier
from repro.core.verifiers import PaillierVerifier, PlaintextVerifier, ZKPVerifier
from repro.database.engine import Database
from repro.database.schema import ColumnType, TableSchema
from repro.model.constraints import upper_bound_regulation
from repro.model.update import Update, UpdateOperation
from repro.privacy import leakage as lk


def db(name="m"):
    database = Database(name)
    database.create_table(
        TableSchema.build(
            "reports",
            [("id", ColumnType.INT), ("org", ColumnType.TEXT),
             ("amount", ColumnType.INT)],
            primary_key=["id"],
        )
    )
    return database


def regulation(bound=10_000):
    return upper_bound_regulation("cap", "reports", "amount", bound, ["org"])


def updates(amounts, org="acme"):
    return [
        Update(table="reports", operation=UpdateOperation.INSERT,
               payload={"id": i, "org": org, "amount": a})
        for i, a in enumerate(amounts)
    ]


def transcript_for(engine_factory, amounts):
    engine = engine_factory()
    for update in updates(amounts):
        engine.verify(update, now=0.0)
    return engine.manager_transcript


# -- profile declarations --------------------------------------------------------

def test_profiles_declare_expected_classes():
    assert lk.PLAINTEXT_PROFILE.leaks_plaintext()
    for profile in (lk.PAILLIER_PROFILE, lk.MPC_PROFILE, lk.TOKEN_PROFILE,
                    lk.ENCLAVE_PROFILE, lk.DP_INDEX_PROFILE):
        assert not profile.leaks_plaintext()
        assert profile.leaks(lk.LeakageClass.DECISION_BIT)


def test_profile_subset_relation():
    small = lk.profile("a", lk.LeakageClass.DECISION_BIT)
    assert small.is_subset_of(lk.PAILLIER_PROFILE)
    assert not lk.PLAINTEXT_PROFILE.is_subset_of(small)


# -- shape indistinguishability -----------------------------------------------------

SECRET_A = [123, 456, 789]
SECRET_B = [111, 222, 333]


def test_paillier_transcripts_indistinguishable():
    t_a = transcript_for(lambda: PaillierVerifier([regulation()]), SECRET_A)
    t_b = transcript_for(lambda: PaillierVerifier([regulation()]), SECRET_B)
    kinds_a = [k for k, _ in t_a]
    kinds_b = [k for k, _ in t_b]
    assert kinds_a == kinds_b
    # No transcript item equals a secret input.
    values = [v for _, v in t_a if isinstance(v, int)]
    assert not set(values) & set(SECRET_A)


def test_zkp_transcripts_indistinguishable():
    # bits must cover both the totals and the slack to the bound.
    t_a = transcript_for(lambda: ZKPVerifier([regulation(2000)], bits=11),
                         SECRET_A)
    t_b = transcript_for(lambda: ZKPVerifier([regulation(2000)], bits=11),
                         SECRET_B)
    assert [k for k, _ in t_a] == [k for k, _ in t_b]


def test_mpc_transcript_is_decisions_only():
    def factory():
        return MPCVerifier([db("a"), db("b")], regulation(100), width=8)

    transcript = transcript_for(factory, [10, 20])
    assert all(k == "decision" for k, _ in transcript)


def test_token_transcript_serials_are_high_entropy():
    engine = TokenVerifier(regulation(1000))
    for update in updates([3, 2]):
        update.producers.append("worker-x")
        engine.verify(update, now=0.0)
    serials = [v for k, v in engine.manager_transcript if k == "serial"]
    assert len(serials) == 5
    assert len(set(serials)) == 5          # single-use
    assert all(len(s) == 64 for s in serials)  # 256-bit hex, no structure


def test_plaintext_baseline_is_distinguishable_by_content():
    t_a = transcript_for(lambda: PlaintextVerifier([db()], [regulation()]),
                         SECRET_A)
    assert any(item.get("amount") == 123 for item in t_a)


def test_transcript_shape_helper():
    assert lk.transcript_shape([b"ab", "xyz", 5, {"a": 1}, [1, 2]]) == [
        ("bytes", 2), ("str", 3), ("int", 3), ("dict", 1), ("list", 2),
    ]
    # Same bit-lengths -> same shape; different types -> distinguishable.
    assert not lk.transcript_distinguishability([1, 2], [1, 3])
    assert lk.transcript_distinguishability([1], [b"xx"])
