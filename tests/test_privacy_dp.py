"""Differential privacy: mechanism, accountant, index, DP-Sync."""

import statistics

import pytest

from repro.common.errors import BudgetExhausted, PReVerError
from repro.privacy.dp import (
    DPIndex,
    DPSyncScheduler,
    LaplaceMechanism,
    PrivacyAccountant,
)
from repro.workloads.streams import bursty_arrivals, poisson_arrivals


def test_laplace_noise_is_centered_and_scaled():
    mechanism = LaplaceMechanism(seed=1)
    samples = [mechanism.sample(2.0) for _ in range(4000)]
    assert abs(statistics.fmean(samples)) < 0.2
    # Laplace(b) has stdev b*sqrt(2) ~= 2.83 for b=2.
    assert 2.2 < statistics.pstdev(samples) < 3.5


def test_noise_scale_grows_as_epsilon_shrinks():
    mechanism = LaplaceMechanism(seed=2)
    tight = [abs(mechanism.add_noise(0, 1.0, 10.0)) for _ in range(500)]
    loose = [abs(mechanism.add_noise(0, 1.0, 0.1)) for _ in range(500)]
    assert statistics.fmean(loose) > 10 * statistics.fmean(tight)


def test_epsilon_must_be_positive():
    with pytest.raises(PReVerError):
        LaplaceMechanism().add_noise(0, 1.0, 0)


def test_accountant_tracks_and_exhausts():
    accountant = PrivacyAccountant(1.0)
    accountant.charge(0.4, "a")
    accountant.charge(0.6, "b")
    assert accountant.remaining == pytest.approx(0.0)
    with pytest.raises(BudgetExhausted):
        accountant.charge(0.01)
    assert accountant.charges == [("a", 0.4), ("b", 0.6)]


def test_accountant_rejects_nonpositive():
    accountant = PrivacyAccountant(1.0)
    with pytest.raises(PReVerError):
        accountant.charge(0)
    with pytest.raises(PReVerError):
        PrivacyAccountant(0)


def test_can_afford():
    accountant = PrivacyAccountant(1.0)
    assert accountant.can_afford(1.0)
    accountant.charge(0.5)
    assert not accountant.can_afford(0.6)


def test_dp_index_estimates_range_counts():
    accountant = PrivacyAccountant(100.0)
    index = DPIndex(0, 100, 10, accountant, epsilon_per_refresh=5.0)
    values = [5.0] * 50 + [95.0] * 10
    index.refresh(values)
    low = index.estimate_range_count(0, 9)
    high = index.estimate_range_count(90, 100)
    assert 40 < low < 60
    assert 0 <= high < 20


def test_dp_index_budget_exhaustion_is_the_paper_failure_mode():
    accountant = PrivacyAccountant(1.0)
    index = DPIndex(0, 10, 5, accountant, epsilon_per_refresh=0.5)
    index.refresh([1.0])
    index.refresh([1.0])
    with pytest.raises(BudgetExhausted):
        index.refresh([1.0])
    assert index.refreshes == 2


def test_dp_index_domain_checks():
    accountant = PrivacyAccountant(10.0)
    with pytest.raises(PReVerError):
        DPIndex(10, 0, 5, accountant, 1.0)
    index = DPIndex(0, 10, 5, accountant, 1.0)
    with pytest.raises(PReVerError):
        index.refresh([11.0])
    with pytest.raises(PReVerError):
        index.estimate_range_count(0, 5)  # never refreshed


# -- DP-Sync -------------------------------------------------------------------

def test_dpsync_flushes_on_schedule_not_on_arrival():
    accountant = PrivacyAccountant(100.0)
    scheduler = DPSyncScheduler(1.0, accountant, epsilon_per_epoch=1.0)
    for t in [0.05, 0.06, 0.07, 2.5]:
        scheduler.submit(t)
    flushes = scheduler.finish(5.0)
    # Flush times are epoch-aligned regardless of arrivals.
    assert [f.time for f in flushes] == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_dpsync_observable_pattern_hides_bursts():
    """The manager-visible flush times are identical for a bursty and a
    quiet stream — timing leakage is gone (sizes are noised)."""
    def observe(arrivals):
        accountant = PrivacyAccountant(1000.0)
        scheduler = DPSyncScheduler(1.0, accountant, epsilon_per_epoch=1.0)
        for t in arrivals:
            scheduler.submit(t)
        scheduler.finish(10.0)
        return [t for t, _ in scheduler.observable_pattern()]

    bursty = observe(bursty_arrivals(30.0, 0.5, 2.0, 9.0))
    quiet = observe(poisson_arrivals(0.5, 9.0))
    assert bursty == quiet


def test_dpsync_eventually_emits_all_real_records():
    accountant = PrivacyAccountant(1000.0)
    scheduler = DPSyncScheduler(1.0, accountant, epsilon_per_epoch=2.0)
    arrivals = poisson_arrivals(5.0, 8.0)
    for t in arrivals:
        scheduler.submit(t)
    flushes = scheduler.finish(30.0)
    emitted = sum(f.real_count for f in flushes)
    assert emitted == len(arrivals)


def test_dpsync_spends_budget_per_epoch():
    accountant = PrivacyAccountant(3.0)
    scheduler = DPSyncScheduler(1.0, accountant, epsilon_per_epoch=1.0)
    with pytest.raises(BudgetExhausted):
        scheduler.finish(10.0)  # needs 10 epochs, affords 3
    assert accountant.spent == pytest.approx(3.0)
