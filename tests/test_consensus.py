"""Paxos and PBFT: agreement, ordering, fault tolerance, view changes."""

import pytest

from repro.common.errors import ProtocolError
from repro.consensus.base import DecisionLog
from repro.consensus.paxos import PaxosCluster
from repro.consensus.pbft import PBFTCluster


# -- shared machinery ---------------------------------------------------------

def test_decision_log_prefix_and_conflicts():
    log = DecisionLog()
    assert log.decide(0, "a") is True
    assert log.decide(0, "a") is False  # idempotent
    log.decide(2, "c")
    assert log.committed_prefix() == ["a"]  # gap at 1
    log.decide(1, "b")
    assert log.committed_prefix() == ["a", "b", "c"]
    with pytest.raises(ProtocolError):
        log.decide(0, "different")


# -- Paxos ----------------------------------------------------------------------

def test_paxos_orders_all_commands():
    cluster = PaxosCluster(n=5)
    for i in range(25):
        cluster.submit({"op": i})
    cluster.run()
    assert [v["op"] for v in cluster.committed()] == list(range(25))


def test_paxos_all_nodes_agree():
    cluster = PaxosCluster(n=5)
    for i in range(10):
        cluster.submit({"op": i})
    cluster.run()
    prefixes = [n.log.committed_prefix() for n in cluster.nodes]
    assert all(p == prefixes[0] for p in prefixes)


def test_paxos_tolerates_minority_crashes():
    cluster = PaxosCluster(n=5)
    cluster.crash(3)
    cluster.crash(4)
    for i in range(5):
        cluster.submit({"op": i})
    cluster.run()
    assert len(cluster.committed()) == 5


def test_paxos_leader_failover_preserves_decisions():
    cluster = PaxosCluster(n=5)
    cluster.submit({"op": "pre"})
    cluster.run()
    cluster.crash(0)
    cluster.elect(1)
    cluster.submit({"op": "post"})
    cluster.run()
    values = [v["op"] for v in cluster.committed()]
    assert "pre" in values and "post" in values


def test_paxos_stats():
    cluster = PaxosCluster(n=5)
    for i in range(10):
        cluster.submit({"op": i})
    cluster.run()
    stats = cluster.stats()
    assert stats.decided == 10
    assert stats.throughput > 0
    assert stats.mean_latency > 0
    assert stats.p95_latency >= stats.mean_latency * 0.5


def test_paxos_minimum_size():
    with pytest.raises(ProtocolError):
        PaxosCluster(n=2)


# -- PBFT --------------------------------------------------------------------------

def test_pbft_orders_all_commands():
    cluster = PBFTCluster(f=1)
    for i in range(15):
        cluster.submit({"tx": i})
    cluster.run()
    assert len(cluster.committed()) == 15


def test_pbft_honest_replicas_agree():
    cluster = PBFTCluster(f=1)
    for i in range(8):
        cluster.submit({"tx": i})
    cluster.run()
    prefixes = [n.log.committed_prefix() for n in cluster.nodes]
    shortest = min(len(p) for p in prefixes)
    for i in range(shortest):
        assert len({str(p[i]) for p in prefixes}) == 1


def test_pbft_tolerates_f_silent_replicas():
    cluster = PBFTCluster(f=1)
    cluster.nodes[2].silence()
    for i in range(5):
        cluster.submit({"tx": i})
    cluster.run()
    assert len(cluster.committed()) == 5


def test_pbft_fails_beyond_f_crashes():
    cluster = PBFTCluster(f=1, view_timeout=0.2)
    cluster.nodes[2].silence()
    cluster.nodes[3].silence()
    cluster.submit({"tx": "x"})
    cluster.run(until=5.0)
    assert cluster.committed() == []  # no quorum possible


def test_pbft_view_change_on_primary_failure():
    cluster = PBFTCluster(f=1, view_timeout=0.5)
    cluster.nodes[0].silence()  # primary of view 0
    cluster.submit({"tx": "x"})
    cluster.run()
    assert {str(v) for v in cluster.committed()} >= {str({"tx": "x"})}
    live_views = {n.view for n in cluster.nodes[1:]}
    assert live_views == {1}


def test_pbft_equivocating_primary_is_safe():
    cluster = PBFTCluster(f=1, view_timeout=0.5)
    cluster.nodes[0].equivocate = True
    cluster.submit({"tx": "y"})
    cluster.run()
    # Safety: no slot decided differently by honest replicas.
    for slot in range(3):
        decided = {
            str(n.log.get(slot))
            for n in cluster.nodes[1:]
            if n.log.get(slot) is not None
        }
        assert len(decided) <= 1
    # Liveness: the client request eventually commits after view change.
    assert any(v == {"tx": "y"} for v in cluster.committed())


def test_pbft_message_complexity_quadratic_vs_paxos():
    """The Section-6 comparison in miniature: PBFT uses ~O(n^2)
    messages per decree, Paxos ~O(n)."""
    paxos = PaxosCluster(n=7)
    for i in range(10):
        paxos.submit({"op": i})
    paxos.run()
    pbft = PBFTCluster(f=2)  # also 7 nodes
    for i in range(10):
        pbft.submit({"tx": i})
    pbft.run()
    paxos_msgs = paxos.stats().messages
    pbft_msgs = pbft.stats().messages
    assert pbft_msgs > 2 * paxos_msgs


def test_pbft_minimum_f():
    with pytest.raises(ProtocolError):
        PBFTCluster(f=0)


# -- percentile correctness (shared nearest-rank helper) ---------------------

def test_nearest_rank_percentile_boundaries():
    """The nearest-rank definition, pinned at its boundary cases: the
    p95 of 20 ordered samples is the 19th (rank ceil(0.95*20)=19), not
    an interpolated or off-by-one neighbor."""
    from repro.common.metrics import nearest_rank

    samples = list(range(1, 21))  # 1..20
    assert nearest_rank(samples, 95) == 19
    assert nearest_rank(samples, 50) == 10
    assert nearest_rank(samples, 99) == 20
    assert nearest_rank(samples, 100) == 20
    assert nearest_rank(samples, 0) == 1
    assert nearest_rank([7.0], 95) == 7.0
    assert nearest_rank([], 95) == 0.0
    # Unsorted input is ordered first.
    assert nearest_rank([3, 1, 2], 50) == 2


def test_cluster_stats_percentiles_nearest_rank():
    """ClusterStats p50/p95/p99 all come from the shared helper —
    p95 over 10 decisions is the 10th-largest-rank sample, and the
    quantiles are monotone."""
    from repro.common.metrics import nearest_rank

    cluster = PaxosCluster(n=3)
    for i in range(10):
        cluster.submit({"op": i})
    cluster.run()
    stats = cluster.stats()
    assert stats.p50_latency <= stats.p95_latency <= stats.p99_latency
    d = stats.to_dict()
    assert {"p50_latency", "p95_latency", "p99_latency"} <= set(d)
    assert d["p95_latency"] == stats.p95_latency
    assert nearest_rank([d["p95_latency"]], 95) == d["p95_latency"]


def test_decision_log_decide_contract_matches_docstring():
    """Pin the documented contract: True on first decision, False on an
    idempotent re-decision, ProtocolError (fail-closed) on a
    conflicting one — the docstring says exactly this."""
    log = DecisionLog()
    assert log.decide(5, {"v": 1}) is True
    assert log.decide(5, {"v": 1}) is False
    with pytest.raises(ProtocolError):
        log.decide(5, {"v": 2})
    doc = DecisionLog.decide.__doc__
    assert "ProtocolError" in doc
    assert "False" in doc and "True" in doc
