"""Paxos and PBFT: agreement, ordering, fault tolerance, view changes."""

import pytest

from repro.common.errors import ProtocolError
from repro.consensus.base import DecisionLog
from repro.consensus.paxos import PaxosCluster
from repro.consensus.pbft import PBFTCluster


# -- shared machinery ---------------------------------------------------------

def test_decision_log_prefix_and_conflicts():
    log = DecisionLog()
    assert log.decide(0, "a") is True
    assert log.decide(0, "a") is False  # idempotent
    log.decide(2, "c")
    assert log.committed_prefix() == ["a"]  # gap at 1
    log.decide(1, "b")
    assert log.committed_prefix() == ["a", "b", "c"]
    with pytest.raises(ProtocolError):
        log.decide(0, "different")


# -- Paxos ----------------------------------------------------------------------

def test_paxos_orders_all_commands():
    cluster = PaxosCluster(n=5)
    for i in range(25):
        cluster.submit({"op": i})
    cluster.run()
    assert [v["op"] for v in cluster.committed()] == list(range(25))


def test_paxos_all_nodes_agree():
    cluster = PaxosCluster(n=5)
    for i in range(10):
        cluster.submit({"op": i})
    cluster.run()
    prefixes = [n.log.committed_prefix() for n in cluster.nodes]
    assert all(p == prefixes[0] for p in prefixes)


def test_paxos_tolerates_minority_crashes():
    cluster = PaxosCluster(n=5)
    cluster.crash(3)
    cluster.crash(4)
    for i in range(5):
        cluster.submit({"op": i})
    cluster.run()
    assert len(cluster.committed()) == 5


def test_paxos_leader_failover_preserves_decisions():
    cluster = PaxosCluster(n=5)
    cluster.submit({"op": "pre"})
    cluster.run()
    cluster.crash(0)
    cluster.elect(1)
    cluster.submit({"op": "post"})
    cluster.run()
    values = [v["op"] for v in cluster.committed()]
    assert "pre" in values and "post" in values


def test_paxos_stats():
    cluster = PaxosCluster(n=5)
    for i in range(10):
        cluster.submit({"op": i})
    cluster.run()
    stats = cluster.stats()
    assert stats.decided == 10
    assert stats.throughput > 0
    assert stats.mean_latency > 0
    assert stats.p95_latency >= stats.mean_latency * 0.5


def test_paxos_minimum_size():
    with pytest.raises(ProtocolError):
        PaxosCluster(n=2)


# -- PBFT --------------------------------------------------------------------------

def test_pbft_orders_all_commands():
    cluster = PBFTCluster(f=1)
    for i in range(15):
        cluster.submit({"tx": i})
    cluster.run()
    assert len(cluster.committed()) == 15


def test_pbft_honest_replicas_agree():
    cluster = PBFTCluster(f=1)
    for i in range(8):
        cluster.submit({"tx": i})
    cluster.run()
    prefixes = [n.log.committed_prefix() for n in cluster.nodes]
    shortest = min(len(p) for p in prefixes)
    for i in range(shortest):
        assert len({str(p[i]) for p in prefixes}) == 1


def test_pbft_tolerates_f_silent_replicas():
    cluster = PBFTCluster(f=1)
    cluster.nodes[2].silence()
    for i in range(5):
        cluster.submit({"tx": i})
    cluster.run()
    assert len(cluster.committed()) == 5


def test_pbft_fails_beyond_f_crashes():
    cluster = PBFTCluster(f=1, view_timeout=0.2)
    cluster.nodes[2].silence()
    cluster.nodes[3].silence()
    cluster.submit({"tx": "x"})
    cluster.run(until=5.0)
    assert cluster.committed() == []  # no quorum possible


def test_pbft_view_change_on_primary_failure():
    cluster = PBFTCluster(f=1, view_timeout=0.5)
    cluster.nodes[0].silence()  # primary of view 0
    cluster.submit({"tx": "x"})
    cluster.run()
    assert {str(v) for v in cluster.committed()} >= {str({"tx": "x"})}
    live_views = {n.view for n in cluster.nodes[1:]}
    assert live_views == {1}


def test_pbft_equivocating_primary_is_safe():
    cluster = PBFTCluster(f=1, view_timeout=0.5)
    cluster.nodes[0].equivocate = True
    cluster.submit({"tx": "y"})
    cluster.run()
    # Safety: no slot decided differently by honest replicas.
    for slot in range(3):
        decided = {
            str(n.log.get(slot))
            for n in cluster.nodes[1:]
            if n.log.get(slot) is not None
        }
        assert len(decided) <= 1
    # Liveness: the client request eventually commits after view change.
    assert any(v == {"tx": "y"} for v in cluster.committed())


def test_pbft_message_complexity_quadratic_vs_paxos():
    """The Section-6 comparison in miniature: PBFT uses ~O(n^2)
    messages per decree, Paxos ~O(n)."""
    paxos = PaxosCluster(n=7)
    for i in range(10):
        paxos.submit({"op": i})
    paxos.run()
    pbft = PBFTCluster(f=2)  # also 7 nodes
    for i in range(10):
        pbft.submit({"tx": i})
    pbft.run()
    paxos_msgs = paxos.stats().messages
    pbft_msgs = pbft.stats().messages
    assert pbft_msgs > 2 * paxos_msgs


def test_pbft_minimum_f():
    with pytest.raises(ProtocolError):
        PBFTCluster(f=0)
