"""Batch/sequential equivalence for the high-throughput pipeline.

``submit_many`` must be indistinguishable from submitting the same
update stream one-by-one: identical decisions, identical applied rows,
identical ledger roots, and inclusion proofs that verify against either
history — including rejection and apply-failure paths.
"""

import pytest

from repro.core.contexts import single_private_database
from repro.core.framework import PReVer
from repro.core.verifiers import PlaintextVerifier
from repro.database.engine import Database
from repro.database.expr import lit, update_field
from repro.database.schema import ColumnType, TableSchema
from repro.ledger.central import CentralLedger
from repro.model.constraints import (
    Constraint,
    ConstraintKind,
    upper_bound_regulation,
)
from repro.model.participants import DataProducer
from repro.model.update import Update, UpdateOperation


def make_db(name="db"):
    db = Database(name)
    db.create_table(
        TableSchema.build(
            "events",
            [("id", ColumnType.INT), ("who", ColumnType.TEXT),
             ("amount", ColumnType.INT)],
            primary_key=["id"],
        )
    )
    return db


def make_update(i, who="w", amount=10, operation=UpdateOperation.INSERT,
                key=None, update_id=None):
    if operation is UpdateOperation.INSERT:
        payload = {"id": i, "who": who, "amount": amount}
    else:
        payload = {"amount": amount}
    return Update(
        table="events", operation=operation, payload=payload, key=key,
        update_id=update_id or f"upd-{i:05d}",
    )


def cap_constraint(bound=50):
    template = upper_bound_regulation("cap", "events", "amount", bound, ["who"])
    return Constraint(
        name="cap", kind=ConstraintKind.INTERNAL,
        aggregate=template.aggregate, comparison=template.comparison,
        bound=bound, tables=("events",), constraint_id="cst-cap",
    )


def positive_constraint():
    return Constraint(name="positive", kind=ConstraintKind.INTERNAL,
                      predicate=update_field("amount") > lit(0),
                      constraint_id="cst-positive")


def mixed_stream():
    """Accepts, aggregate rejections, predicate rejections, two groups."""
    stream = []
    for i in range(12):
        who = "alice" if i % 2 == 0 else "bob"
        amount = 20 if i < 8 else -5  # later ones fail the predicate
        stream.append(make_update(i, who=who, amount=amount))
    return stream


def build_framework():
    framework = PReVer([make_db()])
    framework.register_constraint(positive_constraint())
    framework.register_constraint(cap_constraint(bound=50))
    return framework


def assert_equivalent(seq_fw, bat_fw, seq_results, bat_results):
    assert len(seq_results) == len(bat_results)
    for s, b in zip(seq_results, bat_results):
        assert s.accepted == b.accepted
        assert s.applied == b.applied
        assert s.ledger_sequence == b.ledger_sequence
        assert s.outcome.failed_constraint == b.outcome.failed_constraint
        assert s.update.status == b.update.status
    # Same database end state.
    seq_rows = sorted(r["id"] for r in seq_fw.databases[0].table("events").scan())
    bat_rows = sorted(r["id"] for r in bat_fw.databases[0].table("events").scan())
    assert seq_rows == bat_rows
    # Same ledger digest, and proofs interchange between the histories.
    seq_digest, bat_digest = seq_fw.ledger.digest(), bat_fw.ledger.digest()
    assert seq_digest.size == bat_digest.size
    assert seq_digest.root == bat_digest.root
    for sequence in range(len(bat_fw.ledger)):
        proof = bat_fw.ledger.prove_inclusion(sequence)
        entry = bat_fw.ledger.entry(sequence)
        assert CentralLedger.verify_entry(seq_digest, entry, proof)


def test_submit_many_matches_sequential_with_rejections():
    seq_fw, bat_fw = build_framework(), build_framework()
    seq_results = [seq_fw.submit(u) for u in mixed_stream()]
    bat_results = bat_fw.submit_many(mixed_stream())
    assert_equivalent(seq_fw, bat_fw, seq_results, bat_results)
    # The stream exercises both paths.
    assert any(r.applied for r in bat_results)
    assert any(not r.accepted for r in bat_results)


def test_submit_many_apply_failure_path():
    """Duplicate primary keys fail at apply; the rejection is anchored
    identically to the sequential pipeline."""
    def stream():
        return [make_update(1, update_id="upd-a"),
                make_update(1, update_id="upd-b"),  # duplicate key
                make_update(2, update_id="upd-c")]

    seq_fw, bat_fw = build_framework(), build_framework()
    seq_results = [seq_fw.submit(u) for u in stream()]
    bat_results = bat_fw.submit_many(stream())
    assert not bat_results[1].applied
    assert bat_results[1].outcome.failed_constraint == "apply-failure"
    assert_equivalent(seq_fw, bat_fw, seq_results, bat_results)


def test_submit_many_with_modify_invalidates_cache():
    """A MODIFY mid-batch changes a row an earlier cached aggregate
    counted; decisions must still match the sequential reference."""
    def stream():
        updates = [make_update(i, who="w", amount=10, update_id=f"m-{i}")
                   for i in range(3)]
        updates.append(Update(
            table="events", operation=UpdateOperation.MODIFY,
            payload={"amount": 1}, key=(0,), update_id="m-mod",
        ))
        updates.extend(make_update(i, who="w", amount=10, update_id=f"m-{i}")
                       for i in range(3, 7))
        return updates

    seq_fw, bat_fw = build_framework(), build_framework()
    seq_results = [seq_fw.submit(u) for u in stream()]
    bat_results = bat_fw.submit_many(stream())
    assert_equivalent(seq_fw, bat_fw, seq_results, bat_results)


def test_submit_many_signed_updates():
    producer = DataProducer("alice")

    def stream():
        good = make_update(1, update_id="s-1").sign_with(producer)
        tampered = make_update(2, update_id="s-2").sign_with(producer)
        tampered.payload["amount"] = 999
        unsigned = make_update(3, update_id="s-3")
        return [good, tampered, unsigned]

    seq_fw = PReVer([make_db()], require_signed_updates=True)
    bat_fw = PReVer([make_db()], require_signed_updates=True)
    seq_results = [seq_fw.submit(u) for u in stream()]
    bat_results = bat_fw.submit_many(stream())
    assert [r.accepted for r in bat_results] == [True, False, False]
    assert bat_results[1].outcome.failed_constraint == "bad signature"
    assert bat_results[2].outcome.failed_constraint == "unsigned update"
    assert_equivalent(seq_fw, bat_fw, seq_results, bat_results)


@pytest.mark.parametrize("engine", ["plaintext", "paillier", "zkp"])
def test_submit_many_engines_match_sequential(engine):
    def build():
        db = make_db("mgr")
        regulation = upper_bound_regulation("cap", "events", "amount", 55, ["who"])
        return single_private_database(db, [regulation], engine=engine)

    def stream():
        # alice exceeds the 55 cap on her 6th update of 10.
        return [make_update(i, who=("alice" if i % 2 == 0 else "bob"),
                            update_id=f"e-{i:03d}")
                for i in range(14)]

    seq_fw, bat_fw = build(), build()
    if engine == "paillier":
        # Offline randomness bank for the batched run (fast-path check).
        bat_fw.engine.precompute(len(stream()))
    seq_results = [seq_fw.submit(u) for u in stream()]
    bat_results = bat_fw.submit_many(stream())
    assert any(not r.accepted for r in seq_results)
    for s, b in zip(seq_results, bat_results):
        assert (s.accepted, s.applied) == (b.accepted, b.applied)
    assert seq_fw.ledger.digest().size == bat_fw.ledger.digest().size


def test_plaintext_engine_batch_uses_shared_databases_correctly():
    """PlaintextVerifier's batch cache tracks rows the framework
    applies to the shared database objects."""
    db = make_db("mgr")
    regulation = upper_bound_regulation("cap", "events", "amount", 35, ["who"])
    framework = single_private_database(db, [regulation], engine="plaintext")
    results = framework.submit_many(
        [make_update(i, who="w", update_id=f"p-{i}") for i in range(5)]
    )
    # 10+10+10 accepted (30 <= 35), 4th would reach 40 > 35.
    assert [r.applied for r in results] == [True, True, True, False, False]
    assert isinstance(framework.engine, PlaintextVerifier)
    # Batch state must not leak outside the batch.
    assert framework.engine._batch_cache is None


def test_ledger_append_batch_equals_sequential_appends():
    one, many = CentralLedger("a"), CentralLedger("b")
    payloads = [{"i": i} for i in range(9)]
    for p in payloads:
        one.append(p)
    entries = many.append_batch(payloads)
    assert [e.sequence for e in entries] == list(range(9))
    assert one.digest().root == many.digest().root
    proof = many.prove_inclusion(4)
    assert CentralLedger.verify_entry(one.digest(), many.entry(4), proof)
    # Consistency across a batch boundary still proves append-only.
    old = many.digest()
    many.append_batch([{"i": 9}, {"i": 10}])
    assert CentralLedger.verify_extension(
        old, many.digest(), many.prove_consistency(old.size)
    )


def test_max_results_retention_cap():
    framework = PReVer([make_db()], max_results=5)
    framework.register_constraint(positive_constraint())
    stream = [make_update(i, amount=(10 if i % 2 == 0 else -1))
              for i in range(20)]
    framework.submit_many(stream)
    assert len(framework.results) == 5
    # Running counters survive eviction: 10 of 20 applied.
    assert framework.acceptance_rate() == 0.5
    assert framework.metrics.counter("pipeline.updates").count == 20


def test_throughput_report_shape():
    framework = build_framework()
    framework.submit_many([make_update(i) for i in range(4)])
    report = framework.throughput_report()
    assert report["updates"] == 4
    assert {"authenticate", "verify", "apply", "anchor"} <= set(report["stages"])
    assert report["updates_per_sec"] > 0


def test_empty_batch():
    framework = build_framework()
    assert framework.submit_many([]) == []
    assert len(framework.ledger) == 0


# -- constraint router staleness (regression) --------------------------------
#
# The router index used to be rebuilt only when len(framework.constraints)
# changed, so replacing a constraint in place (same count) or mutating a
# constraint's table scope kept routing the stale version.  The router now
# fingerprints (identity, tables) per constraint and rebuilds on any drift.


def test_router_detects_in_place_constraint_replacement():
    framework = build_framework()
    assert framework.submit(make_update(0, amount=20)).applied

    strict = Constraint(name="positive", kind=ConstraintKind.INTERNAL,
                        predicate=update_field("amount") > lit(100),
                        constraint_id="cst-positive-strict")
    index = next(i for i, c in enumerate(framework.constraints)
                 if c.constraint_id == "cst-positive")
    framework.constraints[index] = strict

    result = framework.submit(make_update(1, amount=20))
    assert not result.applied
    assert result.outcome.failed_constraint == "cst-positive-strict"


def test_router_detects_table_scope_mutation():
    framework = PReVer([make_db()])
    elsewhere = Constraint(name="blocker", kind=ConstraintKind.INTERNAL,
                           predicate=update_field("amount") > lit(100),
                           tables=("other_table",),
                           constraint_id="cst-blocker")
    framework.register_constraint(elsewhere)
    # Scoped away from "events": it must not fire here.
    assert framework.submit(make_update(0, amount=20)).applied

    # Widen the scope in place — no add/remove, same object identity.
    elsewhere.tables = ("events",)
    result = framework.submit(make_update(1, amount=20))
    assert not result.applied
    assert result.outcome.failed_constraint == "cst-blocker"
