"""Durability layer: WAL framing/repair, snapshots, recovery.

The contract under test: with durability on, the state recovered after
an interruption equals the state as of the last durable anchor marker
— table rows, ledger entries, Merkle root, and (for stateful engines)
aggregate decisions all match an uninterrupted run; and damage the WAL
cannot prove harmless (mid-log corruption, sequence holes) makes
recovery refuse rather than silently skip history.
"""

import os
import struct
import subprocess
import sys
import textwrap
import time

import pytest

from repro.common.errors import (
    DurabilityError,
    IntegrityError,
    WalCorruptionError,
)
from repro.core.contexts import single_private_database
from repro.core.framework import PReVer
from repro.core.verifiers import PaillierVerifier
from repro.crypto.paillier import generate_paillier_keypair
from repro.database import Database, TableSchema
from repro.database.schema import ColumnType
from repro.durability import (
    CRASH_POINTS,
    Durability,
    SimulatedCrash,
    WriteAheadLog,
)
from repro.durability.wal import encode_record
from repro.model.constraints import upper_bound_regulation
from repro.model.update import Update, UpdateOperation
from repro.obs.tracing import Tracer


# -- fixtures / builders ------------------------------------------------------

# One small keypair for every Paillier test: recovery requires the
# operator to re-supply the same key material the crashed run used.
PAILLIER_KEYPAIR = generate_paillier_keypair(128)


def make_update(i: int, co2: int = 10, org: str = "acme") -> Update:
    return Update(
        table="emissions",
        operation=UpdateOperation.INSERT,
        payload={"id": i, "org": org, "co2": co2},
        update_id=f"upd-{i:05d}",
    )


def build(engine="plaintext", durability=None, tracer=None, bound=1_000_000):
    """A fresh single-database framework over an emissions table."""
    schema = TableSchema.build(
        "emissions",
        [("id", ColumnType.INT), ("org", ColumnType.TEXT),
         ("co2", ColumnType.INT)],
        primary_key=["id"],
    )
    database = Database("cloud-manager")
    database.create_table(schema)
    cap = upper_bound_regulation(
        "iso-cap", "emissions", "co2", bound=bound, match_columns=["org"]
    )
    # Recovery rebuilds the topology in a new process: constraint ids
    # live inside anchored payloads and snapshot aggregate keys, so they
    # must be stable across builds rather than freshly auto-generated.
    cap.constraint_id = "cst-iso-cap"
    if engine == "paillier":
        verifier = PaillierVerifier([cap], keypair=PAILLIER_KEYPAIR)
        framework = PReVer(
            databases=[database], engine=verifier, durability=durability,
            tracer=tracer,
        )
        framework.constraints.append(cap)
        return framework, database
    framework = single_private_database(
        database, [cap], engine=engine, durability=durability, tracer=tracer
    )
    return framework, database


def durable_dir(tmp_path) -> str:
    return str(tmp_path / "durable")


# -- WAL framing, rotation, repair -------------------------------------------


def test_wal_roundtrip_across_reopen(tmp_path):
    wal = WriteAheadLog(str(tmp_path / "wal"))
    wal.append_update({"update_id": "u1"})
    wal.append_update({"update_id": "u2"})
    wal.append_anchor({"payloads": [], "size": 2, "root": "ab"})
    wal.close()

    reopened = WriteAheadLog(str(tmp_path / "wal"))
    records = list(reopened.records())
    assert [(lsn, kind) for lsn, kind, _ in records] == [
        (1, "update"), (2, "update"), (3, "anchor")
    ]
    assert records[0][2] == {"update_id": "u1"}
    assert records[2][2] == {"payloads": [], "size": 2, "root": "ab"}
    assert reopened.last_lsn == 3
    # Appends continue the sequence.
    assert reopened.append_update({"update_id": "u3"}) == 4
    reopened.close()


def test_wal_records_since_lsn(tmp_path):
    wal = WriteAheadLog(str(tmp_path / "wal"))
    for i in range(5):
        wal.append_update({"i": i})
    assert [lsn for lsn, _, _ in wal.records(since_lsn=3)] == [4, 5]
    wal.close()


def test_wal_torn_final_record_is_truncated(tmp_path):
    wal = WriteAheadLog(str(tmp_path / "wal"))
    for i in range(3):
        wal.append_update({"i": i})
    wal.close()
    path = wal.segment_paths()[0]
    # Simulate a crash mid-write: a half-written frame at the tail.
    frame = encode_record(4, "update", {"i": 3})
    with open(path, "ab") as handle:
        handle.write(frame[: len(frame) // 2])

    reopened = WriteAheadLog(str(tmp_path / "wal"))
    assert reopened.truncated_records == 1
    assert reopened.last_lsn == 3
    assert len(list(reopened.records())) == 3
    # The torn bytes are physically gone; the next append reuses LSN 4.
    assert reopened.append_update({"i": "new"}) == 4
    reopened.close()
    final = WriteAheadLog(str(tmp_path / "wal"))
    assert [lsn for lsn, _, _ in final.records()] == [1, 2, 3, 4]
    final.close()


def test_wal_crc_corrupt_middle_record_refuses(tmp_path):
    wal = WriteAheadLog(str(tmp_path / "wal"))
    for i in range(5):
        wal.append_update({"i": i})
    wal.close()
    path = wal.segment_paths()[0]
    with open(path, "rb") as handle:
        buf = bytearray(handle.read())
    # Flip one payload bit inside the *second* record (8-byte header +
    # payload per record, so record 2's payload starts after record 1's
    # frame plus another header).
    first_length = struct.unpack_from(">I", buf, 0)[0]
    second_payload_at = 8 + first_length + 8
    buf[second_payload_at + 4] ^= 0x01
    with open(path, "wb") as handle:
        handle.write(buf)

    with pytest.raises(WalCorruptionError, match="refusing to skip history"):
        WriteAheadLog(str(tmp_path / "wal"))


def test_wal_lsn_gap_refuses(tmp_path):
    directory = tmp_path / "wal"
    directory.mkdir()
    with open(directory / "wal-000000000001.log", "wb") as handle:
        handle.write(encode_record(1, "update", {"i": 0}))
        handle.write(encode_record(3, "update", {"i": 2}))  # 2 missing
    with pytest.raises(WalCorruptionError, match="sequence broken"):
        WriteAheadLog(str(directory))


def test_wal_corrupt_non_final_segment_refuses(tmp_path):
    wal = WriteAheadLog(str(tmp_path / "wal"), segment_max_bytes=64)
    for i in range(10):
        wal.append_update({"i": i})
    wal.close()
    segments = wal.segment_paths()
    assert len(segments) > 2
    # Truncate an *earlier* segment: even a torn-looking tail is not
    # repairable there — only the last segment can legitimately tear.
    with open(segments[0], "r+b") as handle:
        handle.truncate(os.path.getsize(segments[0]) - 3)
    with pytest.raises(WalCorruptionError):
        WriteAheadLog(str(tmp_path / "wal"))


def test_wal_segment_rotation_and_prune(tmp_path):
    wal = WriteAheadLog(str(tmp_path / "wal"), segment_max_bytes=64)
    for i in range(10):
        wal.append_update({"i": i})
    assert len(wal.segment_paths()) > 2
    assert [lsn for lsn, _, _ in wal.records()] == list(range(1, 11))
    removed = wal.prune(upto_lsn=wal.last_lsn)
    assert removed >= 1
    # The active segment survives and the tail is still readable.
    remaining = [lsn for lsn, _, _ in wal.records()]
    assert remaining and remaining[-1] == 10
    wal.close()


def test_wal_ensure_next_lsn(tmp_path):
    wal = WriteAheadLog(str(tmp_path / "wal"))
    wal.ensure_next_lsn(41)
    assert wal.append_update({"i": 0}) == 41
    wal.close()


def test_wal_fsync_batching_counts(tmp_path):
    wal = WriteAheadLog(str(tmp_path / "wal"), fsync_every=2)
    for i in range(5):
        wal.append_update({"i": i})
    # 5 updates at fsync_every=2 -> fsyncs after the 2nd and 4th.
    assert wal.metrics.counter_value("durability.fsyncs") == 2
    wal.append_anchor({"payloads": [], "size": 0, "root": ""}, sync=True)
    assert wal.metrics.counter_value("durability.fsyncs") == 3
    wal.close()


# -- snapshots ----------------------------------------------------------------


def test_snapshot_self_check_skips_tampered_file(tmp_path):
    durability = Durability.wal_with_snapshots(
        durable_dir(tmp_path), snapshot_every=2
    )
    framework, _ = build(durability=durability)
    framework.submit_many([make_update(i) for i in range(2)])
    framework.submit_many([make_update(i) for i in range(2, 4)])
    snapshotter = framework._snapshotter
    paths = snapshotter.snapshot_paths()
    assert len(paths) == 2
    framework.close()
    # Corrupt the newest snapshot; latest() must fall back to the older.
    with open(paths[-1], "r+b") as handle:
        handle.truncate(os.path.getsize(paths[-1]) - 2)
    newest_lsn = int(os.path.basename(paths[-1])[5:-5])
    lsn, _ = snapshotter.latest()
    assert lsn < newest_lsn
    # ...and recovery still reaches the full pre-crash state by
    # replaying the longer WAL tail.
    fresh, database = build(durability=durability)
    report = fresh.recover()
    assert report.snapshot_lsn == lsn
    assert report.replayed_anchors == 1
    assert report.verified_against_anchor
    assert len(database.table("emissions").rows()) == 4
    fresh.close()


def test_snapshot_restore_refuses_used_framework(tmp_path):
    durability = Durability.wal_with_snapshots(
        durable_dir(tmp_path), snapshot_every=2
    )
    framework, _ = build(durability=durability)
    framework.submit_many([make_update(i) for i in range(2)])
    framework.close()
    used, _ = build(durability=durability)
    used.submit(make_update(99))
    with pytest.raises(DurabilityError, match="fresh instance"):
        used.recover()
    used.close()


def test_snapshot_now_and_wal_prune(tmp_path):
    durability = Durability.wal_with_snapshots(
        durable_dir(tmp_path), snapshot_every=0,  # manual snapshots only
        segment_max_bytes=64,
    )
    framework, _ = build(durability=durability)
    framework.submit_many([make_update(i) for i in range(8)])
    segments_before = len(framework._wal.segment_paths())
    path = framework.snapshot_now()
    assert os.path.exists(path)
    assert len(framework._wal.segment_paths()) < segments_before
    framework.close()
    # Snapshot-only recovery: the WAL tail before the snapshot is gone.
    fresh, database = build(durability=durability)
    report = fresh.recover()
    assert report.snapshot_lsn is not None
    assert report.replayed_updates == 0
    assert report.verified_against_anchor
    assert len(database.table("emissions").rows()) == 8
    # LSN continuity: new records must not reuse snapshot-covered LSNs.
    fresh.submit(make_update(100))
    assert fresh._wal.last_lsn > report.snapshot_lsn
    fresh.close()


def test_snapshot_now_needs_snapshot_mode():
    framework, _ = build()
    with pytest.raises(DurabilityError):
        framework.snapshot_now()


# -- recovery edge cases ------------------------------------------------------


def test_recover_requires_durability():
    framework, _ = build()
    with pytest.raises(DurabilityError, match="needs durability"):
        framework.recover()


def test_recovery_empty_wal(tmp_path):
    durability = Durability.wal(durable_dir(tmp_path))
    framework, _ = build(durability=durability)
    report = framework.recover()
    assert report.replayed_updates == 0
    assert report.final_size == 0
    assert not report.verified_against_anchor  # nothing anchored yet
    # The framework serves normally after an empty recovery.
    assert framework.submit(make_update(1)).applied
    framework.close()


def test_recovery_drops_unanchored_tail(tmp_path):
    """Updates logged but never covered by an anchor marker were never
    durable decisions — recovery must drop, not replay, them."""
    durability = Durability.wal(durable_dir(tmp_path))
    framework, _ = build(durability=durability)
    framework.submit_many([make_update(i) for i in range(3)])
    anchored_root = framework.ledger.digest().root
    # Simulate a crash after logging two more updates but before their
    # batch anchored, by writing the update records directly.
    now = framework.clock.now()
    for i in (10, 11):
        framework._wal.append_update(
            framework._wal_update_record(make_update(i), now)
        )
    framework.close()

    fresh, database = build(durability=durability)
    report = fresh.recover()
    assert report.dropped_unanchored == 2
    assert report.replayed_updates == 3
    assert fresh.ledger.digest().root == anchored_root
    assert len(database.table("emissions").rows()) == 3
    fresh.close()


def test_recovery_refuses_when_anchor_covers_unlogged_update(tmp_path):
    """An anchor marking an update applied without its update record
    means history is missing — recovery must refuse."""
    durability = Durability.wal(durable_dir(tmp_path))
    framework, _ = build(durability=durability)
    framework.submit(make_update(1))
    framework.close()
    # Rewrite the segment keeping only the anchor record.
    wal = WriteAheadLog(os.path.join(durable_dir(tmp_path), "wal"))
    anchor = [d for _, kind, d in wal.records() if kind == "anchor"][0]
    wal.close()
    path = wal.segment_paths()[0]
    with open(path, "wb") as handle:
        handle.write(encode_record(1, "anchor", anchor))

    fresh, _ = build(durability=durability)
    with pytest.raises(WalCorruptionError, match="no update record"):
        fresh.recover()
    fresh.close()


def test_recovery_refuses_on_root_mismatch(tmp_path):
    """A well-framed anchor whose payloads were rewritten (valid CRC,
    coherent LSNs) still fails the per-batch Merkle root check."""
    durability = Durability.wal(durable_dir(tmp_path))
    framework, _ = build(durability=durability)
    framework.submit(make_update(1))
    framework.close()
    wal = WriteAheadLog(os.path.join(durable_dir(tmp_path), "wal"))
    records = list(wal.records())
    wal.close()
    (lsn1, _, update_data), (lsn2, _, anchor_data) = records
    anchor_data["payloads"][0]["status"] = "rejected"
    path = wal.segment_paths()[0]
    with open(path, "wb") as handle:
        handle.write(encode_record(lsn1, "update", update_data))
        handle.write(encode_record(lsn2, "anchor", anchor_data))

    fresh, _ = build(durability=durability)
    with pytest.raises(IntegrityError, match="disagree"):
        fresh.recover()
    fresh.close()


def test_recovery_refuses_non_fresh_framework(tmp_path):
    durability = Durability.wal(durable_dir(tmp_path))
    framework, _ = build(durability=durability)
    framework.ledger.append({"forged": True})
    with pytest.raises(DurabilityError, match="fresh instance"):
        framework.recover()
    framework.close()


# -- recovery equivalence -----------------------------------------------------


def assert_equivalent(recovered, reference, database, reference_db):
    """Recovered state matches the uninterrupted reference run."""
    assert recovered.ledger.digest().root == reference.ledger.digest().root
    assert len(recovered.ledger) == len(reference.ledger)
    assert recovered.decision_history() == reference.decision_history()
    assert (database.table("emissions").rows()
            == reference_db.table("emissions").rows())
    assert recovered.acceptance_rate() == reference.acceptance_rate()


@pytest.mark.parametrize("engine", ["plaintext", "paillier"])
def test_recovery_equivalence(tmp_path, engine):
    """Crash + recover converges on the uninterrupted run's state,
    including future decisions (the aggregates 'remember' correctly)."""
    bound = 100

    # Reference: uninterrupted, durability off.
    reference, reference_db = build(engine=engine, bound=bound)
    for i in range(3):
        assert reference.submit(make_update(i, co2=30)).applied

    # Durable run over the same updates, then an unclean stop.
    durability = Durability.wal_with_snapshots(
        durable_dir(tmp_path), snapshot_every=2
    )
    durable, _ = build(engine=engine, durability=durability, bound=bound)
    for i in range(3):
        durable.submit(make_update(i, co2=30))
    durable.close()

    recovered, database = build(engine=engine, durability=durability,
                                bound=bound)
    report = recovered.recover()
    assert report.verified_against_anchor
    assert_equivalent(recovered, reference, database, reference_db)

    # Same decision on the same next update: 90 + 30 > 100 -> reject.
    assert not recovered.submit(make_update(3, co2=30)).applied
    assert not reference.submit(make_update(3, co2=30)).applied
    recovered.close()


def test_durability_off_is_byte_identical(tmp_path):
    """Anchored payloads never depend on the durability mode: ledger
    roots with durability off equal roots with it on."""
    off, _ = build()
    on, _ = build(durability=Durability.wal_with_snapshots(
        durable_dir(tmp_path), snapshot_every=3))
    off.submit_many([make_update(i) for i in range(5)])
    on.submit_many([make_update(i) for i in range(5)])
    assert off.ledger.digest().root == on.ledger.digest().root
    on.close()


# -- crash-point matrix -------------------------------------------------------


@pytest.mark.parametrize("point", CRASH_POINTS)
def test_crash_at_every_point_recovers_to_last_anchor(tmp_path, point):
    """Killed at any injected crash point, recovery lands exactly on
    the last *durable* anchor: the in-flight batch survives iff its
    anchor marker reached the WAL."""
    durability = Durability.wal_with_snapshots(
        durable_dir(tmp_path), snapshot_every=100
    )
    framework, _ = build(durability=durability)
    framework.submit_many([make_update(i) for i in range(3)])
    root_before = framework.ledger.digest().root
    framework.close()

    crashing, _ = build(durability=durability.with_crash_after(point))
    crashing.recover()
    assert crashing.ledger.digest().root == root_before
    with pytest.raises(SimulatedCrash):
        crashing.submit_many([make_update(i, co2=7) for i in range(10, 13)])
    root_at_crash = crashing.ledger.digest().root
    # No close(): a killed process flushes nothing extra either — every
    # record was flushed at append time, which is what a kill leaves.

    recovered, database = build(durability=durability)
    report = recovered.recover()
    assert report.verified_against_anchor
    if point == "anchor_marker":
        # The marker hit disk: the batch is durable and replays fully.
        assert recovered.ledger.digest().root == root_at_crash
        assert len(database.table("emissions").rows()) == 6
        assert report.dropped_unanchored == 0
    else:
        # Crash before the marker: the batch never became durable.
        assert recovered.ledger.digest().root == root_before
        assert len(database.table("emissions").rows()) == 3
        # wal_update/apply fire after the first update of the batch was
        # logged; anchor_append fires after all three were.
        expected_dropped = 3 if point == "anchor_append" else 1
        assert report.dropped_unanchored == expected_dropped
    # The recovered instance keeps serving.
    assert recovered.submit(make_update(50)).applied
    recovered.close()


def test_crash_point_on_single_submit(tmp_path):
    durability = Durability.wal(durable_dir(tmp_path))
    crashing, _ = build(
        durability=durability.with_crash_after("anchor_append")
    )
    with pytest.raises(SimulatedCrash):
        crashing.submit(make_update(1))
    recovered, database = build(durability=durability)
    report = recovered.recover()
    assert report.final_size == 0
    assert report.dropped_unanchored == 1
    assert database.table("emissions").rows() == []
    recovered.close()


def test_real_process_kill_recovers(tmp_path):
    """Not simulated: a child process is SIGKILLed mid-run; the parent
    recovers from whatever physically reached disk."""
    durable = durable_dir(tmp_path)
    ready = str(tmp_path / "ready")
    child_script = textwrap.dedent(f"""
        import sys
        sys.path.insert(0, {os.path.join(os.getcwd(), "src")!r})
        sys.path.insert(0, {os.path.dirname(os.path.abspath(__file__))!r})
        from test_durability import build, make_update
        from repro.durability import Durability
        framework, _ = build(durability=Durability.wal({durable!r}))
        framework.submit_many([make_update(i) for i in range(20)])
        open({ready!r}, "w").write("ok")
        i = 1000
        while True:
            framework.submit_many(
                [make_update(j) for j in range(i, i + 200)]
            )
            i += 200
    """)
    process = subprocess.Popen([sys.executable, "-c", child_script])
    try:
        deadline = time.time() + 60
        while not os.path.exists(ready) and time.time() < deadline:
            time.sleep(0.05)
        assert os.path.exists(ready), "child never finished its first batch"
        time.sleep(0.2)  # let it get mid-flight in a later batch
    finally:
        process.kill()
        process.wait()

    recovered, database = build(durability=Durability.wal(durable))
    report = recovered.recover()
    assert report.replayed_anchors >= 1
    assert report.verified_against_anchor
    assert len(database.table("emissions").rows()) >= 20
    assert recovered.submit(make_update(999_999)).applied
    recovered.close()


# -- observability integration ------------------------------------------------


def test_durability_metrics_and_spans(tmp_path):
    durability = Durability.wal_with_snapshots(
        durable_dir(tmp_path), snapshot_every=2
    )
    framework, _ = build(durability=durability, tracer=Tracer())
    framework.submit_many([make_update(i) for i in range(4)])
    metrics = framework.metrics
    assert metrics.counter_value("durability.wal_records") == 5  # 4 upd + 1 anc
    assert metrics.counter_value("durability.fsyncs") >= 1
    assert metrics.counter_value("durability.snapshots") == 1
    assert metrics.timer_total("durability.wal_append") > 0.0
    assert metrics.timer_total("durability.fsync") > 0.0
    assert len(framework.tracer.spans_named("durability.wal_append")) == 5
    assert len(framework.tracer.spans_named("durability.snapshot")) == 1
    framework.close()

    fresh, _ = build(durability=durability, tracer=Tracer())
    fresh.recover()
    assert fresh.metrics.timer_total("durability.recover") > 0.0
    assert len(fresh.tracer.spans_named("durability.recover")) == 1
    fresh.close()


def test_durability_off_writes_nothing(tmp_path):
    framework, _ = build()
    framework.submit_many([make_update(i) for i in range(3)])
    framework.close()
    assert not os.path.exists(durable_dir(tmp_path))
    assert framework.metrics.counter_value("durability.wal_records") == 0


# -- policy validation --------------------------------------------------------


def test_policy_validation():
    with pytest.raises(DurabilityError, match="unknown durability mode"):
        Durability(mode="paranoid")
    with pytest.raises(DurabilityError, match="needs a directory"):
        Durability(mode="wal")
    with pytest.raises(DurabilityError, match="unknown crash point"):
        Durability.wal("/tmp/x", crash_after="nope")
    assert not Durability.off().enabled
    assert Durability.wal("/tmp/x").enabled
    assert not Durability.wal("/tmp/x").snapshots_enabled
    assert Durability.wal_with_snapshots("/tmp/x").snapshots_enabled
