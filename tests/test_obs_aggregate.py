"""Cross-process telemetry aggregation.

The acceptance bar: a sharded *process* run and a parallel-executor
run must both surface worker-side counters/spans in the coordinator's
merged ``/metrics`` — no more telemetry black holes in worker
processes.  Plus the delta/merge unit semantics those paths rely on:
incremental captures never double-count, merged timer samples keep
percentiles exact, and merges land under stable per-worker labels.
"""

import pytest

from repro.common.metrics import MetricsRegistry
from repro.core.sharded import ShardedPReVer
from repro.obs.aggregate import DeltaTracker, TelemetryDelta, merge_delta
from repro.obs.export import to_prometheus
from repro.obs.server import start_ops_server
from repro.obs.tracing import Tracer
from repro.parallel.executors import ParallelExecutor

from tests.test_pipeline_stages import build_plaintext, golden_stream
from tests.test_sharded import sharded_stream, two_shard_specs


# -- delta capture semantics ------------------------------------------------


def test_delta_capture_is_incremental():
    registry = MetricsRegistry()
    tracker = DeltaTracker(registry)
    registry.counter("c").add(2.5)
    registry.timer("t").record(0.5)
    registry.gauge("g").set(7)
    registry.histogram("h", buckets=[1.0]).observe(0.25)
    first = tracker.capture()
    assert first.counters["c"] == (1, 2.5)
    assert first.timers["t"] == [0.5]
    assert first.gauges["g"] == 7.0
    assert first.histograms["h"]["count"] == 1
    assert first.histograms["h"]["total"] == 0.25
    # Nothing new since -> empty delta (no double counting).
    assert tracker.capture().empty()
    registry.counter("c").add()
    registry.timer("t").record(1.5)
    second = tracker.capture()
    assert second.counters["c"] == (1, 1.0)
    assert second.timers["t"] == [1.5]  # only the new sample ships


def test_origin_tracker_ships_full_history_first():
    registry = MetricsRegistry()
    registry.counter("pre.existing").add(3.0)
    late = DeltaTracker(registry, origin=True)
    fresh = DeltaTracker(registry, origin=False)
    assert late.capture().counters["pre.existing"] == (1, 3.0)
    assert fresh.capture().empty()


def test_tracker_captures_finished_spans():
    registry = MetricsRegistry()
    tracer = Tracer()
    tracker = DeltaTracker(registry, tracer=tracer)
    with tracer.span("work", items=3):
        pass
    delta = tracker.capture()
    assert [span["name"] for span in delta.spans] == ["work"]
    assert tracker.capture().empty()


def test_delta_pickles():
    import pickle

    registry = MetricsRegistry()
    tracker = DeltaTracker(registry)
    registry.counter("c").add()
    registry.timer("t").record(0.1)
    delta = pickle.loads(pickle.dumps(tracker.capture()))
    assert delta.counters["c"] == (1, 1.0)


# -- merge semantics --------------------------------------------------------


def test_merge_delta_labels_and_accumulates():
    coordinator = MetricsRegistry()
    delta = TelemetryDelta(
        counters={"crypto.ops": (4, 4.0)},
        gauges={"depth": 2.0},
        timers={"verify": [0.1, 0.3]},
        histograms={"lat": {"bounds": [1.0], "counts": [2, 0],
                            "count": 2, "total": 0.4}},
        spans=[{"name": "parallel.chunk", "duration": 0.05}],
    )
    merge_delta(coordinator, delta, prefix="worker.w0")
    merge_delta(coordinator, delta, prefix="worker.w0")
    assert coordinator.counter_value("worker.w0.crypto.ops") == 8
    assert coordinator.gauge_value("worker.w0.depth") == 2.0
    timer = coordinator.timer("worker.w0.verify")
    assert timer.samples == [0.1, 0.3, 0.1, 0.3]  # percentiles stay exact
    hist = coordinator.histogram("worker.w0.lat")
    assert hist.count == 4 and hist.total == pytest.approx(0.8)
    span_timer = coordinator.timer("worker.w0.span.parallel.chunk")
    assert span_timer.samples == [0.05, 0.05]


# -- parallel-executor runs surface worker telemetry ------------------------


def crypto_chunk(chunk):
    """Top-level (picklable) chunk fn that records worker-side metrics."""
    from repro.obs.aggregate import worker_metrics

    registry = worker_metrics()
    out = []
    for item in chunk:
        registry.counter("crypto.modexp").add()
        out.append(item * item)
    return out


def test_parallel_executor_merges_worker_counters():
    coordinator = MetricsRegistry()
    executor = ParallelExecutor(workers=2, min_items=2)
    executor.bind_metrics(coordinator)
    items = list(range(32))
    assert executor.map_chunks(crypto_chunk, items) == [i * i for i in items]
    snap = coordinator.snapshot()
    worker_counters = [n for n in snap["counters"]
                       if n.startswith("worker.w")]
    assert worker_counters, "no worker-side counters merged"
    # The wrapper's own chunk accounting covers every item exactly once.
    chunks = sum(
        coordinator.counter_value(f"worker.w{i}.parallel.worker.chunks")
        for i in range(2)
    )
    items_seen = sum(
        coordinator.counter_total(f"worker.w{i}.parallel.worker.items")
        for i in range(2)
    )
    assert chunks == 2 and items_seen == len(items)
    # Chunk-fn telemetry rides along too.
    modexps = sum(
        coordinator.counter_value(f"worker.w{i}.crypto.modexp")
        for i in range(2)
    )
    assert modexps == len(items)
    # And it all lands in the Prometheus scrape.
    text = to_prometheus(coordinator)
    assert "repro_worker_w0_parallel_worker_chunks_total" in text


def test_unbound_executor_returns_bare_results():
    executor = ParallelExecutor(workers=2, min_items=2)
    items = list(range(16))
    assert executor.map_chunks(crypto_chunk, items) == [i * i for i in items]


def test_framework_run_under_process_executor_surfaces_workers():
    """An end-to-end batch under the process executor: the merged
    /metrics scrape shows per-worker sections (acceptance criterion)."""
    framework = build_plaintext()
    executor = ParallelExecutor(workers=2, min_items=2)
    framework.executor = executor
    executor.bind_metrics(framework.metrics)
    stream = golden_stream()
    framework.submit_many(stream, executor=executor)
    # The plaintext engine's parallel stage is batch Schnorr auth,
    # which only fans out for signed batches; drive the executor
    # directly through the framework's registry to model engine work.
    executor.map_chunks(crypto_chunk, list(range(24)))
    with start_ops_server(framework) as server:
        status, _, payload = server.handle("/metrics")
    text = payload.decode("utf-8")
    assert status == 200
    assert "repro_worker_w0_parallel_worker_chunks_total" in text
    assert "repro_pipeline_updates_total" in text


# -- sharded process runs surface shard telemetry ---------------------------


def test_sharded_process_run_surfaces_shard_sections():
    sharded = ShardedPReVer(two_shard_specs(), dispatch="process")
    try:
        sharded.submit_many(sharded_stream(12))
        registry = sharded.collect_telemetry()
        snap = registry.snapshot()
        for name in ("s0", "s1"):
            updates = registry.counter_value(f"shard.{name}.pipeline.updates")
            assert updates == 6, f"empty worker section for shard {name}"
            assert f"shard.{name}.pipeline.stage.verify" in snap["timers"]
        # Incremental: a second collect with no new work adds nothing.
        before = registry.counter_value("shard.s0.pipeline.updates")
        sharded.collect_telemetry()
        assert registry.counter_value(
            "shard.s0.pipeline.updates"
        ) == before
        # More work -> only the increment merges.
        sharded.submit_many(sharded_stream(4, offset=100, who="carol"))
        sharded.collect_telemetry()
        assert registry.counter_value("shard.s0.pipeline.updates") == 8
        # The ops server scrape shows the shard sections end to end.
        with start_ops_server(sharded) as server:
            status, _, body = server.handle("/metrics")
        assert status == 200
        text = body.decode("utf-8")
        assert "repro_shard_s0_pipeline_updates_total" in text
        assert "repro_shard_s1_pipeline_updates_total" in text
    finally:
        sharded.close()


def test_sharded_process_health_and_readiness():
    sharded = ShardedPReVer(two_shard_specs(), dispatch="process")
    try:
        sharded.submit_many(sharded_stream(4))
        health = sharded.health_report()
        assert health["ok"]
        assert health["checks"]["shard.s0"]["ok"]
        ready = sharded.readiness_report()
        assert ready["ok"]
        assert ready["checks"]["shard.s1.ready"]["ok"]
    finally:
        sharded.close()
    assert not sharded.health_report()["ok"]  # closed shards are dead


def test_sharded_serial_telemetry_and_trail(tmp_path):
    from repro.obs.events import EventLog

    import functools

    # Serial dispatch with a traced shard: the coordinator finds the
    # trail on whichever shard anchored the update.
    specs = two_shard_specs()
    sharded = ShardedPReVer(specs, dispatch="serial")
    try:
        results = sharded.submit_many(sharded_stream(8))
        registry = sharded.collect_telemetry()
        assert registry.counter_value("shard.s0.pipeline.updates") == 4
        assert registry.counter_value("shard.s1.pipeline.updates") == 4
        assert sharded.health_report()["ok"]
        assert sharded.readiness_report()["ok"]
        # Untraced shards anchor no trace ids -> no trail anywhere.
        assert sharded.verification_trail("tr-none") is None
        # Attach tracing to one shard and find its trail via the
        # coordinator (trail carries the owning shard's name).
        shard = sharded.shards[0].framework
        shard.tracer = Tracer().add_sink(EventLog())
        result = sharded.submit(sharded_stream(1, offset=50)[0])
        trail = sharded.verification_trail(result.trace_id)
        assert trail is not None and trail["verified"] is True
        assert trail["shard"] == "s0"
    finally:
        sharded.close()
