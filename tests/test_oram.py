"""Path ORAM: correctness, stash behaviour, and access-pattern hiding."""

import statistics

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.randomness import deterministic_rng
from repro.privacy.oram import ObliviousKV, ORAMError, PathORAM


def test_write_then_read():
    oram = PathORAM(capacity=16)
    oram.write(3, "hello")
    assert oram.read(3) == "hello"


def test_read_before_write_is_none():
    oram = PathORAM(capacity=8)
    assert oram.read(2) is None


def test_overwrite():
    oram = PathORAM(capacity=8)
    oram.write(1, "a")
    oram.write(1, "b")
    assert oram.read(1) == "b"


def test_many_blocks_roundtrip():
    oram = PathORAM(capacity=32, rng=deterministic_rng(5))
    for i in range(32):
        oram.write(i, f"value-{i}")
    for i in range(32):
        assert oram.read(i) == f"value-{i}", i


def test_interleaved_workload():
    oram = PathORAM(capacity=16, rng=deterministic_rng(6))
    reference = {}
    rng = deterministic_rng(7)
    for step in range(300):
        block = rng.randbelow(16)
        if rng.randbelow(2):
            value = f"v{step}"
            oram.write(block, value)
            reference[block] = value
        else:
            assert oram.read(block) == reference.get(block)


def test_stash_stays_small():
    oram = PathORAM(capacity=64, rng=deterministic_rng(8))
    rng = deterministic_rng(9)
    for step in range(500):
        oram.write(rng.randbelow(64), step)
    # Path ORAM's stash is O(log N) w.h.p.; allow generous slack.
    assert oram.stash_size < 40


def test_block_id_bounds():
    oram = PathORAM(capacity=4)
    with pytest.raises(ORAMError):
        oram.read(4)
    with pytest.raises(ORAMError):
        PathORAM(capacity=0)


def test_server_sees_only_path_indices():
    oram = PathORAM(capacity=16, rng=deterministic_rng(10))
    oram.write(5, "secret-value")
    oram.read(5)
    view = oram.server_view()
    assert all(kind in ("read", "write") for kind, _ in view)
    assert all(0 <= leaf < oram.leaves for _, leaf in view)
    assert "secret-value" not in str(view)


def test_access_pattern_is_uniform_regardless_of_workload():
    """The discriminating property: repeatedly accessing ONE hot block
    produces the same leaf-access distribution as scanning all blocks —
    the server cannot tell the workloads apart."""
    def leaf_spread(workload):
        oram = PathORAM(capacity=16, rng=deterministic_rng(11))
        for block in workload:
            oram.read(block)
        histogram = oram.leaf_access_histogram()
        total = sum(histogram.values())
        return max(histogram.values()) / total

    hot = leaf_spread([3] * 200)           # pathological hot spot
    scan = leaf_spread(list(range(16)) * 12 + [0] * 8)
    # Neither workload concentrates accesses on few leaves.
    assert hot < 0.35 and scan < 0.35


def test_direct_access_would_leak_for_comparison():
    """Sanity check of the threat: without ORAM, the hot-block workload
    is trivially identifiable (one row touched 200 times)."""
    accesses = [3] * 200
    histogram = {}
    for block in accesses:
        histogram[block] = histogram.get(block, 0) + 1
    assert max(histogram.values()) / len(accesses) == 1.0


# -- ObliviousKV -----------------------------------------------------------------

def test_kv_roundtrip():
    kv = ObliviousKV(capacity=16)
    kv.put("worker:anne", {"hours": 12})
    kv.put("worker:bob", {"hours": 7})
    assert kv.get("worker:anne") == {"hours": 12}
    assert kv.get("worker:bob") == {"hours": 7}


def test_kv_miss_performs_dummy_access():
    kv = ObliviousKV(capacity=8)
    kv.put("a", 1)
    before = len(kv.server_view())
    assert kv.get("nope") is None
    # The miss still touched the server (indistinguishable from a hit).
    assert len(kv.server_view()) > before


def test_kv_capacity():
    kv = ObliviousKV(capacity=2)
    kv.put("a", 1)
    kv.put("b", 2)
    with pytest.raises(ORAMError):
        kv.put("c", 3)


@given(ops=st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 100)), max_size=60
))
@settings(max_examples=20, deadline=None)
def test_oram_matches_dict_semantics(ops):
    oram = PathORAM(capacity=8, rng=deterministic_rng(12))
    reference = {}
    for block, value in ops:
        if value % 3 == 0:
            assert oram.read(block) == reference.get(block)
        else:
            oram.write(block, value)
            reference[block] = value
    for block in range(8):
        assert oram.read(block) == reference.get(block)
