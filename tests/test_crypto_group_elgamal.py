"""Schnorr group and exponential ElGamal."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.elgamal import (
    ElGamalError,
    discrete_log_bounded,
    generate_elgamal_keypair,
)
from repro.crypto.group import SchnorrGroup
from repro.crypto.numbers import is_probable_prime


def test_default_group_is_safe_prime(group):
    assert group.p == 2 * group.q + 1
    assert is_probable_prime(group.p)
    assert is_probable_prime(group.q)


def test_generator_has_order_q(group):
    assert group.is_member(group.g)
    assert group.power(group.g, group.q) == 1


def test_membership_rejects_non_members(group):
    assert not group.is_member(0)
    assert not group.is_member(group.p)
    # A quadratic non-residue is not in the order-q subgroup.
    for candidate in range(2, 50):
        if pow(candidate, group.q, group.p) != 1:
            assert not group.is_member(candidate)
            break


def test_membership_edge_inputs(group):
    """Range policing: membership is defined on [1, p) only — zero,
    negatives, p itself, and out-of-range values are all non-members
    (never an exception, never a wrapped-around residue check)."""
    assert not group.is_member(-1)
    assert not group.is_member(-group.g)  # -g ≡ p-g, a non-residue
    assert not group.is_member(group.p + group.g)  # no implicit mod p
    assert group.is_member(1)  # the identity is in every subgroup
    assert not group.is_member(group.p - 1)  # order 2, not in ⟨g⟩


def test_membership_boundary_of_subgroup(group):
    """Squares land in the order-q subgroup; their 'square roots' with
    Jacobi symbol -1 sit exactly outside it."""
    for x in range(2, 12):
        assert group.is_member(x * x % group.p)
    # g generates the subgroup: every power is a member.
    for e in (1, 2, group.q - 1, group.q):
        assert group.is_member(group.power(group.g, e))


def test_membership_generic_path_matches_jacobi_path(group):
    """A non-safe-prime group (direct construction) takes the generic
    e^q check; on a safe-prime modulus both paths must agree."""
    for candidate in range(1, 40):
        jacobi_path = group.is_member(candidate)
        euler_path = pow(candidate, group.q, group.p) == 1
        assert jacobi_path == euler_path
    # A directly-constructed non-safe-prime group falls back to the
    # generic e^q check: with the wrong order q-1, the order-q
    # generator must be rejected.
    generic = SchnorrGroup(p=group.p, q=group.q - 1, g=group.g)
    assert not generic.is_member(group.g)


def test_independent_generator_differs_and_is_member(group):
    h = group.independent_generator(b"test")
    assert group.is_member(h)
    assert h != group.g
    h2 = group.independent_generator(b"test")
    assert h2 == h  # deterministic
    assert group.independent_generator(b"other") != h


def test_from_safe_prime_validates():
    with pytest.raises(ValueError):
        SchnorrGroup.from_safe_prime(23, 10)


def test_generate_small_group():
    small = SchnorrGroup.generate(bits=32)
    assert small.is_member(small.g)
    assert small.power(small.g, small.q) == 1


def test_elgamal_roundtrip(group):
    keys = generate_elgamal_keypair(group)
    for m in (0, 1, 17, 999):
        ct = keys.public_key.encrypt(m)
        assert keys.private_key.decrypt(ct, max_plaintext=1000) == m


@given(a=st.integers(min_value=0, max_value=400),
       b=st.integers(min_value=0, max_value=400))
@settings(max_examples=15, deadline=None)
def test_elgamal_additive_homomorphism(group, a, b):
    keys = generate_elgamal_keypair(group)
    ct = keys.public_key.encrypt(a) + keys.public_key.encrypt(b)
    assert keys.private_key.decrypt(ct, max_plaintext=800) == a + b


def test_elgamal_scalar(group):
    keys = generate_elgamal_keypair(group)
    ct = keys.public_key.encrypt(6) * 7
    assert keys.private_key.decrypt(ct, max_plaintext=100) == 42


def test_elgamal_rerandomize(group):
    keys = generate_elgamal_keypair(group)
    ct = keys.public_key.encrypt(5)
    ct2 = keys.public_key.rerandomize(ct)
    assert (ct2.c1, ct2.c2) != (ct.c1, ct.c2)
    assert keys.private_key.decrypt(ct2, 10) == 5


def test_elgamal_bounded_dlog_raises_beyond_bound(group):
    keys = generate_elgamal_keypair(group)
    ct = keys.public_key.encrypt(500)
    with pytest.raises(ElGamalError):
        keys.private_key.decrypt(ct, max_plaintext=100)


def test_discrete_log_bounded_exact(group):
    target = group.power(group.g, 1234)
    assert discrete_log_bounded(group, target, 2000) == 1234
