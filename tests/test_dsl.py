"""The declarative constraint language (Section 3.2's query-language
surface for regulations)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.database.engine import Database
from repro.database.schema import ColumnType, TableSchema
from repro.model.constraints import Comparison, ConstraintKind
from repro.model.dsl import (
    ConstraintSyntaxError,
    parse_constraint,
    parse_regulation,
)
from repro.model.update import Update, UpdateOperation


def tasks_db():
    db = Database("db")
    db.create_table(TableSchema.build(
        "tasks",
        [("task_id", ColumnType.TEXT), ("worker", ColumnType.TEXT),
         ("hours", ColumnType.INT), ("completed_at", ColumnType.FLOAT)],
        primary_key=["task_id"],
        nullable=["completed_at"],
    ))
    return db


def task(worker, hours, at=0.0):
    return Update(
        table="tasks", operation=UpdateOperation.INSERT,
        payload={"task_id": f"t-{worker}-{hours}-{at}", "worker": worker,
                 "hours": hours, "completed_at": at},
    )


# -- predicate constraints -------------------------------------------------------

def test_check_with_new_reference():
    constraint = parse_constraint("CHECK NEW.hours > 0 ON tasks")
    db = tasks_db()
    assert constraint.check([db], task("w", 1), 0.0)
    assert not constraint.check([db], task("w", 0), 0.0)
    assert constraint.tables == ("tasks",)


def test_check_boolean_combinators():
    constraint = parse_constraint(
        "CHECK NEW.hours > 0 AND NEW.hours <= 12 OR NEW.worker = 'admin'"
    )
    db = tasks_db()
    assert constraint.check([db], task("w", 5), 0.0)
    assert not constraint.check([db], task("w", 13), 0.0)
    assert constraint.check([db], task("admin", 13), 0.0)


def test_check_not_and_parentheses():
    constraint = parse_constraint(
        "CHECK NOT (NEW.hours > 10 OR NEW.hours < 1)"
    )
    db = tasks_db()
    assert constraint.check([db], task("w", 5), 0.0)
    assert not constraint.check([db], task("w", 11), 0.0)


def test_check_in_list():
    constraint = parse_constraint(
        "CHECK NEW.worker IN ('alice', 'bob')"
    )
    db = tasks_db()
    assert constraint.check([db], task("alice", 1), 0.0)
    assert not constraint.check([db], task("carol", 1), 0.0)


def test_check_arithmetic_precedence():
    constraint = parse_constraint("CHECK NEW.hours * 2 + 1 <= 11")
    db = tasks_db()
    assert constraint.check([db], task("w", 5), 0.0)
    assert not constraint.check([db], task("w", 6), 0.0)


def test_unary_minus_and_comparison_aliases():
    constraint = parse_constraint("CHECK NEW.hours <> -1")
    db = tasks_db()
    assert constraint.check([db], task("w", 3), 0.0)
    assert not constraint.check([db], task("w", -1), 0.0)


# -- aggregate constraints ----------------------------------------------------------

def test_flsa_regulation_text():
    regulation = parse_regulation(
        "SUM(hours) PER worker WITHIN 7d OF completed_at <= 40 ON tasks",
        name="flsa-40h",
    )
    assert regulation.kind is ConstraintKind.REGULATION
    assert regulation.comparison is Comparison.LE
    assert regulation.bound == 40
    assert regulation.aggregate.window.length == 7 * 86400.0
    assert regulation.is_linear()
    db = tasks_db()
    db.insert("tasks", {"task_id": "a", "worker": "w", "hours": 35,
                        "completed_at": 0.0})
    assert regulation.check([db], task("w", 5, at=1.0), now=1.0)
    assert not regulation.check([db], task("w", 6, at=1.0), now=1.0)
    # The old task falls out of the 7-day window.
    later = 8 * 86400.0
    assert regulation.check([db], task("w", 40, at=later), now=later)


def test_count_star_per_group():
    constraint = parse_constraint("COUNT(*) PER worker <= 2 ON tasks")
    db = tasks_db()
    db.insert("tasks", {"task_id": "a", "worker": "w", "hours": 1,
                        "completed_at": None})
    assert constraint.check([db], task("w", 1), 0.0)
    db.insert("tasks", {"task_id": "b", "worker": "w", "hours": 1,
                        "completed_at": None})
    assert not constraint.check([db], task("w", 1), 0.0)


def test_aggregate_with_where_filter():
    constraint = parse_constraint(
        "SUM(hours) WHERE hours >= 8 PER worker <= 20 ON tasks"
    )
    db = tasks_db()
    db.insert("tasks", {"task_id": "a", "worker": "w", "hours": 5,
                        "completed_at": None})   # filtered out
    db.insert("tasks", {"task_id": "b", "worker": "w", "hours": 10,
                        "completed_at": None})   # counted
    assert constraint.check([db], task("w", 10), 0.0)       # 10+10 <= 20
    db.insert("tasks", {"task_id": "c", "worker": "w", "hours": 8,
                        "completed_at": None})
    assert not constraint.check([db], task("w", 10), 0.0)   # 18+10 > 20


def test_ge_aggregate():
    constraint = parse_constraint("SUM(hours) PER worker >= 10 ON tasks")
    db = tasks_db()
    assert not constraint.check([db], task("w", 5), 0.0)
    assert constraint.check([db], task("w", 10), 0.0)


def test_multiple_match_columns():
    constraint = parse_constraint(
        "SUM(hours) PER worker, task_id <= 5 ON tasks"
    )
    assert constraint.aggregate.match_columns == ("worker", "task_id")


def test_duration_units():
    for text, seconds in [("30s", 30.0), ("5m", 300.0), ("2h", 7200.0),
                          ("1d", 86400.0), ("1w", 604800.0)]:
        constraint = parse_constraint(
            f"SUM(hours) WITHIN {text} OF completed_at <= 1 ON tasks"
        )
        assert constraint.aggregate.window.length == seconds


# -- parsed constraints drive the engines ----------------------------------------------

def test_parsed_regulation_through_paillier_engine():
    from repro.core.verifiers import PaillierVerifier

    regulation = parse_regulation("SUM(hours) PER worker <= 40 ON tasks")
    engine = PaillierVerifier([regulation])
    assert engine.verify(task("w", 40), 0.0).accepted
    assert not engine.verify(task("w", 1), 0.0).accepted


def test_parsed_regulation_through_framework():
    from repro.core.contexts import single_private_database

    db = tasks_db()
    regulation = parse_regulation(
        "SUM(hours) PER worker <= 10 ON tasks", name="cap"
    )
    framework = single_private_database(db, [regulation], engine="plaintext")
    assert framework.submit(task("w", 10)).accepted
    assert not framework.submit(task("w", 1)).accepted


# -- error handling --------------------------------------------------------------------

@pytest.mark.parametrize("bad", [
    "",                                    # empty
    "SELECT * FROM tasks",                 # not a constraint
    "CHECK NEW.hours >",                   # dangling operator
    "SUM(hours) <=",                       # missing bound
    "SUM(hours) <= forty",                 # non-numeric bound
    "CHECK (NEW.hours > 0",                # unbalanced paren
    "SUM hours <= 40",                     # missing parens
    "CHECK NEW.hours IN (x)",              # non-literal IN item
    "COUNT(*) WITHIN 7x OF t <= 1",        # bad duration unit
    "CHECK a = 1 trailing",                # trailing tokens
])
def test_syntax_errors(bad):
    with pytest.raises(ConstraintSyntaxError):
        parse_constraint(bad)


def test_unexpected_character():
    with pytest.raises(ConstraintSyntaxError):
        parse_constraint("CHECK a # b")


@given(hours=st.integers(-5, 50), cap=st.integers(0, 45))
@settings(max_examples=40)
def test_parsed_check_matches_python_semantics(hours, cap):
    constraint = parse_constraint(
        f"CHECK NEW.hours > 0 AND NEW.hours <= {cap}"
    )
    db = tasks_db()
    assert constraint.check([db], task("w", hours), 0.0) == (0 < hours <= cap)
