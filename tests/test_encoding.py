"""Byte-identity suite for the encode-once layer.

The fast canonical encoder (``repro.common.encoding``) replaced the
``json.JSONEncoder`` path under every hash, signature, Merkle leaf and
WAL frame in the repo, and the anchor stage now encodes each decision
payload exactly once, splicing the fragment into the ledger leaf and
the WAL record.  None of that may change a single byte: the legacy
encoder is kept in-tree as the oracle (``legacy_canonical_json``) and
this suite checks the new path against it across every value shape the
system produces, plus pinned end-to-end goldens (ledger root, WAL
sha256) captured against the pre-encode-once pipeline.

The caching rules are also load-bearing:

* frozen records (``LedgerEntry``, ``LogRecord``) memoize their bytes —
  sound because the dataclass rejects mutation;
* mutable ``Update`` is *never* identity-cached — tamper detection
  requires that mutating a signed update changes its ``body_bytes``;
* mutable ``Constraint`` uses a key-based memo that invalidates when
  any signed field changes.

Regenerate the end-to-end goldens (only after an *intentional* format
change):

    PYTHONPATH=src python tests/test_encoding.py
"""

import dataclasses
import hashlib
import math
import os
from enum import IntEnum

import pytest

from repro.common.encoding import (
    RawJson,
    encode_canonical,
    encode_canonical_bytes,
    legacy_canonical_json,
)
from repro.common.errors import SerializationError
from repro.common.serialization import (
    canonical_bytes,
    canonical_json,
    from_canonical_json,
)
from repro.core.contexts import single_private_database
from repro.crypto.hashing import digest_canonical
from repro.database.engine import Database
from repro.database.log import LogOp, LogRecord
from repro.database.schema import ColumnType, TableSchema
from repro.durability import Durability
from repro.ledger.central import CentralLedger, LedgerEntry
from repro.model.constraints import upper_bound_regulation
from repro.model.participants import DataProducer
from repro.model.update import Update, UpdateOperation


# -- corpus: every value shape the system serializes ------------------------

class _Color(IntEnum):
    RED = 1


class _OddStr(str):
    pass


def _to_dict_obj():
    class Thing:
        def to_dict(self):
            return {"kind": "thing", "n": 3}
    return Thing()


CORPUS = [
    None,
    True,
    False,
    0,
    -1,
    2 ** 300,                       # big int (beyond float precision)
    1.5,
    -0.0,
    float("inf"),
    float("-inf"),
    "",
    "plain",
    'quotes " and \\ backslash',
    "unicode é€\U0001f600",
    "control \x00\x1f chars",
    b"",
    b"\x00\xff\xa5",
    [],
    {},
    (),
    [1, "two", None, [3, [4]]],
    {"b": 1, "a": 2, "nested": {"z": [1, 2], "y": {}}},
    {"payload": {"id": 7, "org": "org3", "co2": 10},
     "update_id": "upd-0000007", "table": "emissions",
     "operation": "insert", "producers": ["alice", "bob"],
     "managers": [], "visibility": "private", "key": None},
    {"mixed": [True, False, None, 0, 1.25, "s", b"\x01", {"k": []}]},
    {"tagged": b"\xde\xad\xbe\xef"},
    _Color.RED,                     # int subclass → fallback path
    _OddStr("substr"),              # str subclass → fallback path
    {"enum": _Color.RED, "deep": [[_Color.RED]]},
]


@pytest.mark.parametrize("index", range(len(CORPUS)))
def test_fast_encoder_matches_legacy(index):
    value = CORPUS[index]
    assert encode_canonical(value) == legacy_canonical_json(value)
    assert (encode_canonical_bytes(value)
            == legacy_canonical_json(value).encode("utf-8"))


def test_nonfinite_floats_match_legacy():
    for value in (float("inf"), float("-inf")):
        assert encode_canonical(value) == legacy_canonical_json(value)
    # NaN != NaN, so compare the emitted text directly.
    assert encode_canonical(float("nan")) == "NaN"
    assert legacy_canonical_json(float("nan")) == "NaN"


def test_to_dict_hook_matches_legacy():
    obj = _to_dict_obj()
    assert encode_canonical(obj) == legacy_canonical_json(obj)
    assert encode_canonical([obj, {"o": obj}]) == legacy_canonical_json(
        [obj, {"o": obj}]
    )


def test_roundtrip_property():
    for value in CORPUS:
        try:
            text = canonical_json(value)
        except SerializationError:
            continue
        decoded = from_canonical_json(text)
        # Canonical JSON collapses tuples to lists and enum members to
        # their values; re-encoding must reach a fixed point.
        assert canonical_json(decoded) == text


def test_non_string_keys_rejected_like_legacy():
    bad = [{1: "a"}, {"outer": {2: "b"}}, {"k": [{None: 1}]},
           {1: "a", "b": 2}]
    for value in bad:
        with pytest.raises(SerializationError):
            encode_canonical(value)
        with pytest.raises(SerializationError):
            legacy_canonical_json(value)


def test_unserializable_rejected():
    with pytest.raises(SerializationError):
        encode_canonical(object())
    with pytest.raises(SerializationError):
        encode_canonical({"k": {1, 2}})


# -- RawJson splicing -------------------------------------------------------

def test_rawjson_splice_equals_direct_encoding():
    payload = CORPUS[22]  # the update-shaped dict
    encoded = encode_canonical(payload)
    spliced = encode_canonical(
        {"sequence": 41, "payload": RawJson(encoded)}
    )
    direct = encode_canonical({"sequence": 41, "payload": payload})
    assert spliced == direct


def test_rawjson_splice_in_lists():
    items = [{"a": 1}, {"b": [2, 3]}]
    fragments = [RawJson(encode_canonical(item)) for item in items]
    assert encode_canonical(fragments) == encode_canonical(items)


# -- zero-recompute ledger paths --------------------------------------------

def test_ledger_entry_leaf_bytes_cached_and_stable():
    entry = LedgerEntry(sequence=3, payload={"k": "v", "n": 9})
    first = entry.leaf_bytes()
    assert entry.leaf_bytes() is first  # memoized on the frozen record
    assert first == canonical_bytes(
        {"sequence": 3, "payload": {"k": "v", "n": 9}}
    )


def test_ledger_entry_frozen():
    entry = LedgerEntry(sequence=0, payload={"a": 1})
    with pytest.raises(dataclasses.FrozenInstanceError):
        entry.sequence = 5
    with pytest.raises(dataclasses.FrozenInstanceError):
        entry.payload = {}


def test_pre_encoded_append_matches_plain_append():
    payloads = [{"id": i, "blob": b"\x01" * i, "note": f"n{i}"}
                for i in range(12)]
    plain = CentralLedger(name="plain")
    for payload in payloads:
        plain.append(payload)
    spliced = CentralLedger(name="spliced")
    spliced.append_batch(
        payloads, encoded_payloads=[canonical_json(p) for p in payloads]
    )
    assert plain.digest() == spliced.digest()
    for i in range(len(payloads)):
        assert plain.entry(i).leaf_bytes() == spliced.entry(i).leaf_bytes()


def test_pre_encoded_append_length_mismatch_rejected():
    from repro.common.errors import IntegrityError
    ledger = CentralLedger()
    with pytest.raises(IntegrityError):
        ledger.append_batch([{"a": 1}, {"b": 2}], encoded_payloads=["{}"])


# -- mutation hazards -------------------------------------------------------

def test_update_body_bytes_not_cached():
    """Tamper-detection semantics: mutating a signed update MUST change
    its body bytes, so Update is never identity-cached."""
    update = Update(table="t", operation=UpdateOperation.INSERT,
                    payload={"hours": 1}, update_id="u-1")
    before = update.body_bytes()
    update.payload["hours"] = 99
    assert update.body_bytes() != before


def test_constraint_body_memo_invalidates_on_mutation():
    constraint = upper_bound_regulation("cap", "t", "v", 100, ["org"])
    before = constraint.body_bytes()
    assert constraint.body_bytes() is before  # memo hit
    constraint.constraint_id = "cst-pinned"
    after = constraint.body_bytes()
    assert after != before
    assert b"cst-pinned" in after


def test_log_record_payload_bytes_cached():
    record = LogRecord(sequence=0, timestamp=0.0, table="t",
                       op=LogOp.INSERT, key=(1,), before=None,
                       after={"id": 1}, update_id="u-1")
    first = record.payload_bytes()
    assert record.payload_bytes() is first
    assert first == canonical_bytes(record.to_dict())


def test_digest_canonical_matches_manual_idiom():
    value = {"view": 3, "digest": "abc", "seq": 9}
    assert digest_canonical(value) == hashlib.sha256(
        canonical_bytes(value)
    ).hexdigest()
    assert digest_canonical(value, domain=b"D") == hashlib.sha256(
        b"D" + canonical_bytes(value)
    ).hexdigest()


# -- end-to-end goldens (pre-encode-once pipeline) --------------------------
#
# Captured against commit d22fdb9 (before this change) with the fully
# deterministic workload below: SimClock timestamps, pinned update and
# constraint ids.  The encode-once pipeline must reproduce them
# byte-for-byte on the batched, single-update, and pipelined paths.

GOLDEN_ROOT = "3bb144e6e2129fba00fadb9db9eb9f53a19898869e2b5619567633c71defdf4e"
GOLDEN_WAL_BATCHED = (
    "a95723911f253e3e89ec4f3d673002d9d3949a9620f7c285266d127e6bead043"
)
GOLDEN_WAL_SINGLE = (
    "389895ddcbd2b0c00582ac7182e7be63f98486c44dbcd7b2cd01933ce9081c27"
)
GOLDEN_LEAF3_SHA = (
    "569702dcea6d6b4cab02f4926a5226fd1ca0b67aabc448aa6b71174eed22e960"
)
GOLDEN_BODY_SHA = (
    "1af46d5731056599630b05ef74d0cbad6e6025620259067ece39f2daa4e3effd"
)


def _build_framework(state_dir):
    db = Database("mgr")
    db.create_table(TableSchema.build(
        "emissions",
        [("id", ColumnType.INT), ("org", ColumnType.TEXT),
         ("co2", ColumnType.INT)],
        primary_key=["id"],
    ))
    reg = upper_bound_regulation("cap", "emissions", "co2", 10 ** 7, ["org"])
    reg.constraint_id = "cst-emissions-cap"
    return single_private_database(
        db, [reg], engine="plaintext", durability=Durability.wal(state_dir)
    )


def _stream(n):
    return [
        Update(table="emissions", operation=UpdateOperation.INSERT,
               payload={"id": i, "org": f"org{i % 8}", "co2": 10},
               update_id=f"upd-{i:07d}")
        for i in range(n)
    ]


def _wal_sha(state_dir):
    sha = hashlib.sha256()
    wal_dir = os.path.join(state_dir, "wal")
    for name in sorted(os.listdir(wal_dir)):
        with open(os.path.join(wal_dir, name), "rb") as handle:
            sha.update(handle.read())
    return sha.hexdigest()


def test_golden_batched_root_and_wal(tmp_path):
    fw = _build_framework(str(tmp_path))
    stream = _stream(60)
    for i in range(0, 60, 20):
        fw.submit_many(stream[i:i + 20])
    fw.close()
    assert fw.ledger.digest().root.hex() == GOLDEN_ROOT
    assert _wal_sha(str(tmp_path)) == GOLDEN_WAL_BATCHED
    leaf3 = hashlib.sha256(fw.ledger.entry(3).leaf_bytes()).hexdigest()
    assert leaf3 == GOLDEN_LEAF3_SHA


def test_golden_single_root_and_wal(tmp_path):
    fw = _build_framework(str(tmp_path))
    for update in _stream(60):
        fw.submit(update)
    fw.close()
    assert fw.ledger.digest().root.hex() == GOLDEN_ROOT
    assert _wal_sha(str(tmp_path)) == GOLDEN_WAL_SINGLE


def test_golden_pipelined_matches_batched(tmp_path):
    fw = _build_framework(str(tmp_path))
    stream = _stream(60)
    fw.submit_pipelined([stream[i:i + 20] for i in range(0, 60, 20)])
    fw.close()
    assert fw.ledger.digest().root.hex() == GOLDEN_ROOT
    assert _wal_sha(str(tmp_path)) == GOLDEN_WAL_BATCHED


def test_golden_signature_body():
    update = Update(table="emissions", operation=UpdateOperation.INSERT,
                    payload={"id": 1, "org": "org1", "co2": 10},
                    update_id="upd-fixed", producers=["alice"])
    body = hashlib.sha256(update.body_bytes()).hexdigest()
    assert body == GOLDEN_BODY_SHA


def test_trace_reuses_cached_leaf_bytes(tmp_path):
    """The /trace re-verification path (verification_trail →
    CentralLedger.verify_entry) must hit the entry's cached leaf bytes,
    not re-encode — and the proof must still verify."""
    fw = _build_framework(str(tmp_path))
    fw.submit_many(_stream(8))
    fw.close()
    entry = fw.ledger.entry(5)
    cached = entry.__dict__.get("_leaf_bytes")
    assert cached is not None  # populated during the batched append
    digest = fw.ledger.digest()
    proof = fw.ledger.prove_inclusion(5)
    assert CentralLedger.verify_entry(digest, entry, proof)
    assert entry.leaf_bytes() is cached  # same object: no re-encode


if __name__ == "__main__":
    # Golden regeneration helper (see module docstring).
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        fw = _build_framework(tmp)
        stream = _stream(60)
        for i in range(0, 60, 20):
            fw.submit_many(stream[i:i + 20])
        fw.close()
        print("GOLDEN_ROOT =", repr(fw.ledger.digest().root.hex()))
        print("GOLDEN_WAL_BATCHED =", repr(_wal_sha(tmp)))
        print("GOLDEN_LEAF3_SHA =", repr(
            hashlib.sha256(fw.ledger.entry(3).leaf_bytes()).hexdigest()
        ))
    with tempfile.TemporaryDirectory() as tmp:
        fw = _build_framework(tmp)
        for update in _stream(60):
            fw.submit(update)
        fw.close()
        print("GOLDEN_WAL_SINGLE =", repr(_wal_sha(tmp)))
    update = Update(table="emissions", operation=UpdateOperation.INSERT,
                    payload={"id": 1, "org": "org1", "co2": 10},
                    update_id="upd-fixed", producers=["alice"])
    print("GOLDEN_BODY_SHA =", repr(
        hashlib.sha256(update.body_bytes()).hexdigest()
    ))
