"""PIR: correctness, privacy of the server views, private writes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.randomness import deterministic_rng
from repro.privacy.pir import PaillierPIR, PIRError, TwoServerXorPIR


def records(n=16):
    return [f"record-{i}".encode() for i in range(n)]


def test_xor_pir_reads_every_index():
    pir = TwoServerXorPIR(records(9))
    for i in range(9):
        assert pir.read(i).rstrip(b"\0") == f"record-{i}".encode()


def test_xor_pir_index_bounds():
    pir = TwoServerXorPIR(records(4))
    with pytest.raises(PIRError):
        pir.read(4)


def test_xor_pir_record_too_long():
    with pytest.raises(PIRError):
        TwoServerXorPIR([b"x" * 100], record_size=32)


def test_xor_pir_single_server_view_is_index_independent():
    """Each server sees a uniformly random selector; reading index 0 and
    index 7 produce identically-distributed views.  We check the
    testable consequence: the selector never equals the plain one-hot
    vector systematically."""
    pir = TwoServerXorPIR(records(8), rng=deterministic_rng(3))
    for i in range(8):
        pir.read(i)
    one_hots = 0
    for kind, selector in pir.server_a.query_log:
        if sum(selector) == 1:
            one_hots += 1
    assert one_hots <= 2  # random subsets are almost never one-hot


def test_xor_pir_write_then_read():
    pir = TwoServerXorPIR(records(8))
    pir.write(3, b"new-value")
    assert pir.merge_epoch() == 1
    assert pir.read(3).rstrip(b"\0") == b"new-value"
    assert pir.read(2).rstrip(b"\0") == b"record-2"
    assert pir.verify_servers_consistent()


def test_xor_pir_batched_writes_merge_together():
    pir = TwoServerXorPIR(records(8))
    pir.write(1, b"a")
    pir.write(5, b"b")
    assert pir.merge_epoch() == 2
    assert pir.read(1).rstrip(b"\0") == b"a"
    assert pir.read(5).rstrip(b"\0") == b"b"


def test_xor_pir_write_share_is_random_looking():
    """A single server's write buffer view must be non-zero everywhere
    (fully masked), not a one-hot delta revealing the index."""
    pir = TwoServerXorPIR(records(8), rng=deterministic_rng(5))
    pir.write(3, b"x")
    kind, sizes = pir.server_a.query_log[-1]
    assert kind == "write"
    assert len(sizes) == 8  # a full-length vector, no index leak


def test_xor_pir_empty_epoch_merge():
    pir = TwoServerXorPIR(records(4))
    assert pir.merge_epoch() == 0


@given(st.integers(min_value=0, max_value=7),
       st.binary(min_size=1, max_size=16))
@settings(max_examples=20, deadline=None)
def test_xor_pir_write_roundtrip_property(index, value):
    pir = TwoServerXorPIR(records(8))
    pir.write(index, value)
    pir.merge_epoch()
    assert pir.read(index).rstrip(b"\0") == value.rstrip(b"\0")


# -- Paillier cPIR ----------------------------------------------------------------

@pytest.fixture(scope="module")
def ppir():
    return PaillierPIR([11, 22, 33, 44, 55], key_bits=256)


def test_paillier_pir_reads(ppir):
    for i, expected in enumerate([11, 22, 33, 44, 55]):
        assert ppir.read(i) == expected


def test_paillier_pir_bounds(ppir):
    with pytest.raises(PIRError):
        ppir.read(5)


def test_paillier_pir_server_cost_linear():
    small = PaillierPIR(list(range(4)), key_bits=256)
    small.read(0)
    large = PaillierPIR(list(range(16)), key_bits=256)
    large.read(0)
    assert large.server_ops == 4 * small.server_ops


def test_paillier_pir_private_write():
    pir = PaillierPIR([10, 20, 30], key_bits=256)
    pir.write_add(1, 5)
    assert pir.records_snapshot() == [10, 25, 30]
    pir.write_add(0, -3)
    assert pir.records_snapshot() == [7, 25, 30]


def test_paillier_pir_transcript_records_kinds():
    pir = PaillierPIR([1, 2], key_bits=256)
    pir.read(0)
    pir.write_add(1, 1)
    assert pir.query_log == ["read", "write"]


def test_paillier_pir_rejects_oversized_records():
    with pytest.raises(PIRError):
        PaillierPIR([2**600], key_bits=256)
