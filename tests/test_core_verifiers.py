"""RC1 verification engines.

The central property: every privacy engine must agree with the
plaintext reference semantics on every input (dp-index excepted — it
is explicitly approximate and gets an accuracy bound instead).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.verifiers import (
    DPIndexVerifier,
    EnclaveVerifier,
    EngineError,
    PaillierVerifier,
    PlaintextVerifier,
    ZKPVerifier,
)
from repro.database.engine import Database
from repro.database.expr import col, lit
from repro.database.schema import ColumnType, TableSchema
from repro.model.constraints import (
    Comparison,
    Constraint,
    ConstraintKind,
    lower_bound_regulation,
    upper_bound_regulation,
)
from repro.model.update import Update, UpdateOperation
from repro.privacy.dp import DPIndex, PrivacyAccountant


def fresh_db():
    db = Database("mgr")
    db.create_table(
        TableSchema.build(
            "reports",
            [("id", ColumnType.INT), ("org", ColumnType.TEXT),
             ("amount", ColumnType.INT)],
            primary_key=["id"],
        )
    )
    return db


def regulation(bound=100):
    return upper_bound_regulation("cap", "reports", "amount", bound, ["org"])


def make_update(i, org, amount):
    return Update(
        table="reports", operation=UpdateOperation.INSERT,
        payload={"id": i, "org": org, "amount": amount},
    )


def run_sequence(engine_factory, amounts, bound=100):
    """Feed a sequence of updates; returns the accept/reject pattern.

    The engines are *stateful* (they track accepted contributions), so
    the pattern over a sequence is the meaningful comparison unit.
    """
    db = fresh_db()
    engine = engine_factory(db, regulation(bound))
    decisions = []
    for i, amount in enumerate(amounts):
        update = make_update(i, "acme", amount)
        outcome = engine.verify(update, now=0.0)
        decisions.append(outcome.accepted)
        if outcome.accepted:
            db.insert("reports", update.payload)
    return decisions


def plaintext_factory(db, constraint):
    return PlaintextVerifier([db], [constraint])


def paillier_factory(db, constraint):
    return PaillierVerifier([constraint])


def zkp_factory(db, constraint):
    return ZKPVerifier([constraint], bits=10)


def enclave_factory(db, constraint):
    return EnclaveVerifier([db], [constraint])


EXACT_FACTORIES = [plaintext_factory, paillier_factory, zkp_factory,
                   enclave_factory]


@given(amounts=st.lists(st.integers(0, 60), min_size=1, max_size=6))
@settings(max_examples=10, deadline=None)
def test_every_exact_engine_agrees_with_reference(amounts):
    reference = run_sequence(plaintext_factory, amounts)
    for factory in EXACT_FACTORIES[1:]:
        assert run_sequence(factory, amounts) == reference, factory.__name__


@pytest.mark.parametrize("factory", EXACT_FACTORIES)
def test_boundary_exact(factory):
    # 60 + 40 == 100 <= 100 accepted; the next 1 is rejected.
    assert run_sequence(factory, [60, 40, 1]) == [True, True, False]


@pytest.mark.parametrize("factory", EXACT_FACTORIES)
def test_groups_are_independent(factory):
    db = fresh_db()
    engine = factory(db, regulation(50))
    assert engine.verify(make_update(1, "a", 50), 0.0).accepted
    assert engine.verify(make_update(2, "b", 50), 0.0).accepted


def test_paillier_manager_transcript_has_no_plaintext():
    db = fresh_db()
    engine = paillier_factory(db, regulation(1000))
    engine.verify(make_update(1, "acme", 777), 0.0)
    ciphertext_items = [v for k, v in engine.manager_transcript
                        if k == "ciphertext"]
    assert ciphertext_items
    assert all(item != 777 for item in ciphertext_items)
    # Ciphertexts are huge group elements, never small plaintexts.
    assert all(item > 2**100 for item in ciphertext_items)


def test_paillier_rejects_nonlinear_constraints():
    nonlinear = Constraint(
        name="nl", kind=ConstraintKind.INTERNAL,
        predicate=(col("a") * col("b")) <= lit(3),
    )
    with pytest.raises(EngineError):
        PaillierVerifier([nonlinear])


def test_paillier_supports_ge_bounds():
    constraint = lower_bound_regulation("min", "reports", "amount", 10, ["org"])
    engine = PaillierVerifier([constraint])
    assert not engine.verify(make_update(1, "a", 5), 0.0).accepted
    assert engine.verify(make_update(2, "a", 15), 0.0).accepted


def test_zkp_verifier_emits_commitments_only():
    db = fresh_db()
    engine = zkp_factory(db, regulation(1000))
    engine.verify(make_update(1, "acme", 777), 0.0)
    values = [v for k, v in engine.manager_transcript if k == "commitment"]
    assert values and all(v != 777 for v in values)


def test_zkp_verifier_supports_lower_bounds():
    constraint = lower_bound_regulation("min", "reports", "amount", 10, ["org"])
    engine = ZKPVerifier([constraint], bits=8)
    assert not engine.verify(make_update(1, "a", 5), 0.0).accepted
    assert engine.verify(make_update(2, "a", 15), 0.0).accepted


def test_zkp_verifier_rejects_predicate_constraints():
    predicate = Constraint(
        name="p", kind=ConstraintKind.INTERNAL,
        predicate=(col("a") + lit(1)) <= lit(3),
    )
    with pytest.raises(EngineError):
        ZKPVerifier([predicate])


def test_zkp_counts_proof_verifications():
    db = fresh_db()
    engine = zkp_factory(db, regulation(100))
    engine.verify(make_update(1, "a", 10), 0.0)
    assert engine.metrics.counter("zkp.proofs_verified").count == 1


def test_enclave_attestation_in_evidence():
    db = fresh_db()
    engine = enclave_factory(db, regulation(100))
    outcome = engine.verify(make_update(1, "a", 10), 0.0)
    assert outcome.evidence["attestation"] == engine.expected_measurement


def test_dp_index_verifier_is_approximately_correct():
    """With a generous epsilon the DP engine matches the reference on
    inputs far from the boundary, and may flip near it."""
    db = fresh_db()
    accountant = PrivacyAccountant(1000.0)
    index = DPIndex(0, 1e6, 16, accountant, epsilon_per_refresh=5.0)
    constraint = regulation(100)
    engine = DPIndexVerifier([db], [constraint], index, refresh_every=100)
    # Far below the cap: must accept.
    assert engine.verify(make_update(1, "a", 5), 0.0).accepted
    # Far above the cap: must reject.
    assert not engine.verify(make_update(2, "b", 500), 0.0).accepted


def test_dp_index_verifier_budget_exhaustion_halts():
    from repro.common.errors import BudgetExhausted

    db = fresh_db()
    accountant = PrivacyAccountant(0.5)
    index = DPIndex(0, 1e6, 16, accountant, epsilon_per_refresh=0.3)
    engine = DPIndexVerifier([db], [regulation(100)], index, refresh_every=1)
    engine.verify(make_update(1, "a", 5), 0.0)
    with pytest.raises(BudgetExhausted):
        engine.verify(make_update(2, "a", 5), 0.0)


def test_dp_index_verifier_single_constraint_only():
    with pytest.raises(EngineError):
        DPIndexVerifier(
            [fresh_db()],
            [regulation(1), regulation(2)],
            DPIndex(0, 10, 2, PrivacyAccountant(1.0), 0.5),
        )
