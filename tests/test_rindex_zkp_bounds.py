"""Range indexes and ZK lower-bound proofs (new substrate)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import zkp
from repro.database.rindex import RangeIndex
from repro.database.schema import ColumnType, TableSchema
from repro.database.table import Table, TableError


def make_table(with_index=True):
    table = Table(TableSchema.build(
        "events",
        [("id", ColumnType.INT), ("at", ColumnType.FLOAT),
         ("amount", ColumnType.INT)],
        primary_key=["id"],
    ))
    for i, at in enumerate([5.0, 1.0, 9.0, 3.0, 7.0]):
        table.insert({"id": i, "at": at, "amount": i * 10})
    if with_index:
        table.create_range_index("at")
    return table


# -- RangeIndex unit behaviour ------------------------------------------------

def test_range_index_sorted_lookups():
    index = RangeIndex("x")
    for value, key in [(5, (1,)), (1, (2,)), (9, (3,)), (5, (4,))]:
        index.add(value, key)
    assert index.range_keys(1, 5) == [(2,), (1,), (4,)]
    assert index.range_keys(low=6) == [(3,)]
    assert index.range_keys(high=1) == [(2,)]
    assert index.range_keys() == [(2,), (1,), (4,), (3,)]


def test_range_index_exclusive_bounds():
    index = RangeIndex("x")
    for value in (1, 2, 3):
        index.add(value, (value,))
    assert index.range_keys(1, 3, include_low=False) == [(2,), (3,)]
    assert index.range_keys(1, 3, include_high=False) == [(1,), (2,)]


def test_range_index_remove_and_none_values():
    index = RangeIndex("x")
    index.add(5, (1,))
    index.add(None, (2,))  # ignored
    assert len(index) == 1
    index.remove(5, (1,))
    index.remove(None, (2,))
    assert index.range_keys() == []


def test_range_index_min_max():
    index = RangeIndex("x")
    assert index.min_value() is None
    index.add(3, (1,))
    index.add(8, (2,))
    assert (index.min_value(), index.max_value()) == (3, 8)


# -- Table integration ---------------------------------------------------------

def test_table_range_lookup():
    table = make_table()
    rows = table.range_lookup("at", 2.0, 7.0)
    assert [r["at"] for r in rows] == [3.0, 5.0, 7.0]


def test_range_lookup_requires_index():
    table = make_table(with_index=False)
    with pytest.raises(TableError):
        table.range_lookup("at", 0, 1)


def test_range_index_maintained_on_mutations():
    table = make_table()
    table.update_row((0,), {"at": 100.0})
    assert [r["id"] for r in table.range_lookup("at", 99.0, 101.0)] == [0]
    assert table.range_lookup("at", 4.9, 5.1) == []
    table.delete((2,))
    assert table.range_lookup("at", 8.9, 9.1) == []


def test_create_range_index_is_idempotent_and_indexes_existing():
    table = make_table(with_index=False)
    table.create_range_index("at")
    table.create_range_index("at")
    assert len(table.range_lookup("at", 0.0, 10.0)) == 5


def test_windowed_regulation_uses_range_index():
    """Same decisions with and without the index (the index is purely
    a performance structure)."""
    from repro.database.engine import Database
    from repro.model.constraints import WindowSpec, upper_bound_regulation
    from repro.model.update import Update, UpdateOperation

    def build(indexed):
        db = Database("d")
        db.create_table(TableSchema.build(
            "tasks",
            [("task_id", ColumnType.TEXT), ("worker", ColumnType.TEXT),
             ("hours", ColumnType.INT), ("at", ColumnType.FLOAT)],
            primary_key=["task_id"],
        ))
        if indexed:
            db.table("tasks").create_range_index("at")
        for i, at in enumerate([10.0, 50.0, 90.0]):
            db.insert("tasks", {"task_id": f"t{i}", "worker": "w",
                                "hours": 10, "at": at})
        return db

    regulation = upper_bound_regulation(
        "cap", "tasks", "hours", 25, ["worker"],
        window=WindowSpec(time_column="at", length=60.0),
    )
    update = Update(table="tasks", operation=UpdateOperation.INSERT,
                    payload={"task_id": "new", "worker": "w", "hours": 5,
                             "at": 100.0})
    # Window (40, 100]: tasks at 50 and 90 count -> 20 + 5 <= 25 passes.
    for indexed in (False, True):
        assert regulation.check([build(indexed)], update, now=100.0)
    update_big = Update(table="tasks", operation=UpdateOperation.INSERT,
                        payload={"task_id": "new2", "worker": "w",
                                 "hours": 6, "at": 100.0})
    for indexed in (False, True):
        assert not regulation.check([build(indexed)], update_big, now=100.0)


@given(values=st.lists(st.integers(0, 100), max_size=40),
       low=st.integers(0, 100), high=st.integers(0, 100))
@settings(max_examples=40)
def test_range_index_matches_linear_scan(values, low, high):
    index = RangeIndex("x")
    for i, value in enumerate(values):
        index.add(value, (i,))
    expected = sorted(
        (v, (i,)) for i, v in enumerate(values) if low <= v <= high
    )
    assert index.range_keys(low, high) == [k for _, k in expected]


# -- ZK lower bounds --------------------------------------------------------------

def test_lower_bound_proof_accepts_true_statement(committer):
    commitment, _, proof = zkp.prove_lower_bound(committer, 45, 40, bits=8)
    assert zkp.verify_lower_bound(committer, commitment, proof)


def test_lower_bound_boundary(committer):
    commitment, _, proof = zkp.prove_lower_bound(committer, 40, 40, bits=8)
    assert zkp.verify_lower_bound(committer, commitment, proof)


def test_lower_bound_refuses_false_statement(committer):
    from repro.common.errors import IntegrityError

    with pytest.raises(IntegrityError):
        zkp.prove_lower_bound(committer, 39, 40, bits=8)


def test_lower_bound_rejects_swapped_commitment(committer):
    c1, _, proof1 = zkp.prove_lower_bound(committer, 50, 40, bits=8)
    c2, _, _ = zkp.prove_lower_bound(committer, 60, 40, bits=8)
    assert not zkp.verify_lower_bound(committer, c2, proof1)


@given(value=st.integers(0, 255), bound=st.integers(0, 255))
@settings(max_examples=8, deadline=None)
def test_lower_bound_soundness_property(committer, value, bound):
    from repro.common.errors import IntegrityError

    if value >= bound:
        commitment, _, proof = zkp.prove_lower_bound(
            committer, value, bound, bits=8
        )
        assert zkp.verify_lower_bound(committer, commitment, proof)
    else:
        with pytest.raises(IntegrityError):
            zkp.prove_lower_bound(committer, value, bound, bits=8)
