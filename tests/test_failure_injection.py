"""Failure injection: partitions, loss, forks, colluding adversaries.

These tests exercise the unhappy paths that distinguish a framework
claiming integrity from one that merely works when everything does.
"""

import pytest

from repro.consensus.paxos import PaxosCluster
from repro.consensus.pbft import PBFTCluster
from repro.ledger.audit import LedgerAuditor
from repro.ledger.central import CentralLedger
from repro.net.simnet import SimNetwork


# -- consensus under partitions ----------------------------------------------

def test_paxos_minority_partition_blocks_then_reelection_recovers():
    cluster = PaxosCluster(n=5)
    # Cut the leader + one follower away from the other three.
    cluster.network.partition(
        {"paxos-0", "paxos-1"}, {"paxos-2", "paxos-3", "paxos-4"}
    )
    cluster.submit({"op": "stranded"})
    cluster.run()
    assert cluster.committed() == []  # no quorum reachable
    cluster.network.heal_partition()
    # Recovery: a fresh ballot gathers promises carrying the stranded
    # accepted value and re-proposes it (Paxos's safety rule).
    cluster.elect(0)
    cluster.run()
    assert {"op": "stranded"} in cluster.committed()


def test_paxos_majority_partition_still_commits_after_takeover():
    cluster = PaxosCluster(n=5)
    cluster.network.partition(
        {"paxos-0"}, {"paxos-1", "paxos-2", "paxos-3", "paxos-4"}
    )
    # The majority side elects a new leader and makes progress.
    cluster.elect(1)
    cluster.submit({"op": "x"})
    cluster.run()
    majority_logs = [cluster.nodes[i].log.committed_prefix()
                     for i in (1, 2, 3, 4)]
    assert any({"op": "x"} in log for log in majority_logs)
    # The isolated old leader learned nothing.
    assert cluster.nodes[0].log.committed_prefix() == []


def test_pbft_even_split_blocks_then_heals():
    cluster = PBFTCluster(f=1, view_timeout=50.0)
    names = cluster.names
    cluster.network.partition(set(names[:2]), set(names[2:]))
    cluster.submit({"tx": "blocked"})
    cluster.run(until=5.0)
    assert cluster.committed() == []
    cluster.network.heal_partition()
    cluster.submit({"tx": "after-heal"})
    cluster.run()
    assert any(v == {"tx": "after-heal"} for v in cluster.committed())


def test_paxos_under_light_message_loss_with_retries():
    """With 2% loss, individual decrees may stall, but client retries
    eventually commit every command (at-least-once with dedup by the
    decision log is the deployment pattern)."""
    network = SimNetwork(loss_rate=0.02, seed=3)
    cluster = PaxosCluster(n=5, network=network)
    wanted = [{"op": i} for i in range(10)]
    for value in wanted:
        cluster.submit(value)
    cluster.run()
    committed = {str(v) for v in cluster.committed()}
    missing = [v for v in wanted if str(v) not in committed]
    for value in missing:  # one retry round
        cluster.submit(value)
    cluster.run()
    committed = {str(v) for v in cluster.leader.log._decisions.values()}
    assert all(str(v) in committed for v in wanted) or len(missing) <= 2


# -- ledger forks ---------------------------------------------------------------

def test_split_view_attack_detected_by_gossip():
    """A malicious holder serves auditor A one history and auditor B a
    forked one; each alone is satisfied, gossip catches it."""
    honest = CentralLedger()
    for i in range(5):
        honest.append({"update": i})

    forked = CentralLedger()
    for i in range(4):
        forked.append({"update": i})
    forked.append({"update": "EVIL"})
    forked.append({"update": 5})

    auditor_a, auditor_b = LedgerAuditor("a"), LedgerAuditor("b")
    assert auditor_a.audit(honest).ok       # A sees the honest history
    assert auditor_b.audit(forked).ok       # B sees the fork — and is happy
    # Cross-check: the holder cannot link the two digests.
    assert not auditor_a.cross_check(auditor_b, honest)
    assert not auditor_b.cross_check(auditor_a, forked)


def test_gossip_accepts_honest_lag():
    ledger = CentralLedger()
    for i in range(3):
        ledger.append({"update": i})
    auditor_a = LedgerAuditor("a")
    auditor_a.audit(ledger)
    for i in range(3, 6):
        ledger.append({"update": i})
    auditor_b = LedgerAuditor("b")
    auditor_b.audit(ledger)
    # A is behind B, but both views are on one history.
    assert auditor_a.cross_check(auditor_b, ledger)


def test_gossip_same_size_fork_detected():
    ledger_a = CentralLedger()
    ledger_b = CentralLedger()
    for i in range(4):
        ledger_a.append({"update": i})
        ledger_b.append({"update": i if i != 2 else "EVIL"})
    auditor_a, auditor_b = LedgerAuditor("a"), LedgerAuditor("b")
    auditor_a.audit(ledger_a)
    auditor_b.audit(ledger_b)
    assert not auditor_a.cross_check(auditor_b, ledger_a)


def test_gossip_trivially_true_before_first_audit():
    assert LedgerAuditor("a").cross_check(LedgerAuditor("b"), CentralLedger())


# -- colluding platforms in Separ --------------------------------------------------

def test_separ_colluding_platforms_cannot_reidentify_across_weeks():
    """Pseudonyms rotate weekly, so even a full-collusion coalition
    cannot link one worker's week-0 activity to their week-1 activity."""
    from repro.core.separ import SeparSystem

    system = SeparSystem(["uber", "lyft"], weekly_hour_cap=40)
    system.register_worker("w")
    system.complete_task("w", "uber", 10)
    week0 = system.workers["w"].pseudonym(0)
    system.advance_weeks(1)
    system.complete_task("w", "lyft", 10)
    week1 = system.workers["w"].pseudonym(1)
    view = system.collusion_view(["uber", "lyft"])
    assert week0 in view["pseudonym_counts"]
    assert week1 in view["pseudonym_counts"]
    assert week0 != week1  # nothing in the view links them


def test_separ_platform_replaying_spent_token_is_caught():
    """A covert platform replaying a token it observed (to frame the
    worker or double-count hours) trips double-spend detection."""
    from repro.core.separ import SeparSystem
    from repro.privacy.tokens import DoubleSpendError, Token

    system = SeparSystem(["uber", "lyft"], weekly_hour_cap=40)
    system.register_worker("w")
    system.complete_task("w", "uber", 2)
    spent_entry = system.registry.ledger.entry(0).payload
    replayed = Token(
        serial=spent_entry["serial"],
        period=spent_entry["period"],
        pseudonym=spent_entry["pseudonym"],
        signature=0,  # the platform never saw the signature... forge fails
    )
    with pytest.raises(Exception):
        system.registry.spend(replayed, "lyft")
