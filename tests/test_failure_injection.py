"""Failure injection: partitions, loss, forks, colluding adversaries.

These tests exercise the unhappy paths that distinguish a framework
claiming integrity from one that merely works when everything does.
"""

import pytest

from repro.consensus.paxos import PaxosCluster
from repro.consensus.pbft import PBFTCluster
from repro.ledger.audit import LedgerAuditor
from repro.ledger.central import CentralLedger
from repro.net.simnet import SimNetwork


# -- consensus under partitions ----------------------------------------------

def test_paxos_minority_partition_blocks_then_reelection_recovers():
    cluster = PaxosCluster(n=5)
    # Cut the leader + one follower away from the other three.
    cluster.network.partition(
        {"paxos-0", "paxos-1"}, {"paxos-2", "paxos-3", "paxos-4"}
    )
    cluster.submit({"op": "stranded"})
    cluster.run()
    assert cluster.committed() == []  # no quorum reachable
    cluster.network.heal_partition()
    # Recovery: a fresh ballot gathers promises carrying the stranded
    # accepted value and re-proposes it (Paxos's safety rule).
    cluster.elect(0)
    cluster.run()
    assert {"op": "stranded"} in cluster.committed()


def test_paxos_majority_partition_still_commits_after_takeover():
    cluster = PaxosCluster(n=5)
    cluster.network.partition(
        {"paxos-0"}, {"paxos-1", "paxos-2", "paxos-3", "paxos-4"}
    )
    # The majority side elects a new leader and makes progress.
    cluster.elect(1)
    cluster.submit({"op": "x"})
    cluster.run()
    majority_logs = [cluster.nodes[i].log.committed_prefix()
                     for i in (1, 2, 3, 4)]
    assert any({"op": "x"} in log for log in majority_logs)
    # The isolated old leader learned nothing.
    assert cluster.nodes[0].log.committed_prefix() == []


def test_pbft_even_split_blocks_then_heals():
    cluster = PBFTCluster(f=1, view_timeout=50.0)
    names = cluster.names
    cluster.network.partition(set(names[:2]), set(names[2:]))
    cluster.submit({"tx": "blocked"})
    cluster.run(until=5.0)
    assert cluster.committed() == []
    cluster.network.heal_partition()
    cluster.submit({"tx": "after-heal"})
    cluster.run()
    assert any(v == {"tx": "after-heal"} for v in cluster.committed())


def test_paxos_under_light_message_loss_with_retries():
    """With 2% loss, individual decrees may stall, but client retries
    eventually commit every command (at-least-once with dedup by the
    decision log is the deployment pattern)."""
    network = SimNetwork(loss_rate=0.02, seed=3)
    cluster = PaxosCluster(n=5, network=network)
    wanted = [{"op": i} for i in range(10)]
    for value in wanted:
        cluster.submit(value)
    cluster.run()
    committed = {str(v) for v in cluster.committed()}
    missing = [v for v in wanted if str(v) not in committed]
    for value in missing:  # one retry round
        cluster.submit(value)
    cluster.run()
    committed = {str(v) for v in cluster.leader.log._decisions.values()}
    assert all(str(v) in committed for v in wanted) or len(missing) <= 2


# -- ledger forks ---------------------------------------------------------------

def test_split_view_attack_detected_by_gossip():
    """A malicious holder serves auditor A one history and auditor B a
    forked one; each alone is satisfied, gossip catches it."""
    honest = CentralLedger()
    for i in range(5):
        honest.append({"update": i})

    forked = CentralLedger()
    for i in range(4):
        forked.append({"update": i})
    forked.append({"update": "EVIL"})
    forked.append({"update": 5})

    auditor_a, auditor_b = LedgerAuditor("a"), LedgerAuditor("b")
    assert auditor_a.audit(honest).ok       # A sees the honest history
    assert auditor_b.audit(forked).ok       # B sees the fork — and is happy
    # Cross-check: the holder cannot link the two digests.
    assert not auditor_a.cross_check(auditor_b, honest)
    assert not auditor_b.cross_check(auditor_a, forked)


def test_gossip_accepts_honest_lag():
    ledger = CentralLedger()
    for i in range(3):
        ledger.append({"update": i})
    auditor_a = LedgerAuditor("a")
    auditor_a.audit(ledger)
    for i in range(3, 6):
        ledger.append({"update": i})
    auditor_b = LedgerAuditor("b")
    auditor_b.audit(ledger)
    # A is behind B, but both views are on one history.
    assert auditor_a.cross_check(auditor_b, ledger)


def test_gossip_same_size_fork_detected():
    ledger_a = CentralLedger()
    ledger_b = CentralLedger()
    for i in range(4):
        ledger_a.append({"update": i})
        ledger_b.append({"update": i if i != 2 else "EVIL"})
    auditor_a, auditor_b = LedgerAuditor("a"), LedgerAuditor("b")
    auditor_a.audit(ledger_a)
    auditor_b.audit(ledger_b)
    assert not auditor_a.cross_check(auditor_b, ledger_a)


def test_gossip_trivially_true_before_first_audit():
    assert LedgerAuditor("a").cross_check(LedgerAuditor("b"), CentralLedger())


# -- colluding platforms in Separ --------------------------------------------------

def test_separ_colluding_platforms_cannot_reidentify_across_weeks():
    """Pseudonyms rotate weekly, so even a full-collusion coalition
    cannot link one worker's week-0 activity to their week-1 activity."""
    from repro.core.separ import SeparSystem

    system = SeparSystem(["uber", "lyft"], weekly_hour_cap=40)
    system.register_worker("w")
    system.complete_task("w", "uber", 10)
    week0 = system.workers["w"].pseudonym(0)
    system.advance_weeks(1)
    system.complete_task("w", "lyft", 10)
    week1 = system.workers["w"].pseudonym(1)
    view = system.collusion_view(["uber", "lyft"])
    assert week0 in view["pseudonym_counts"]
    assert week1 in view["pseudonym_counts"]
    assert week0 != week1  # nothing in the view links them


def test_separ_platform_replaying_spent_token_is_caught():
    """A covert platform replaying a token it observed (to frame the
    worker or double-count hours) trips double-spend detection."""
    from repro.core.separ import SeparSystem
    from repro.privacy.tokens import DoubleSpendError, Token

    system = SeparSystem(["uber", "lyft"], weekly_hour_cap=40)
    system.register_worker("w")
    system.complete_task("w", "uber", 2)
    spent_entry = system.registry.ledger.entry(0).payload
    replayed = Token(
        serial=spent_entry["serial"],
        period=spent_entry["period"],
        pseudonym=spent_entry["pseudonym"],
        signature=0,  # the platform never saw the signature... forge fails
    )
    with pytest.raises(Exception):
        system.registry.spend(replayed, "lyft")


# -- crash injection in the durable pipeline ----------------------------------

def _durable_framework(tmp_path, crash_after=None):
    """One emissions database with WAL+snapshot durability."""
    from repro.core.contexts import single_private_database
    from repro.database import Database, TableSchema
    from repro.database.schema import ColumnType
    from repro.durability import Durability
    from repro.model.constraints import upper_bound_regulation

    schema = TableSchema.build(
        "emissions",
        [("id", ColumnType.INT), ("co2", ColumnType.INT)],
        primary_key=["id"],
    )
    database = Database("cloud-manager")
    database.create_table(schema)
    cap = upper_bound_regulation("cap", "emissions", "co2", bound=10**9,
                                 match_columns=[])
    cap.constraint_id = "cst-cap"  # stable across rebuilds (see recovery)
    durability = Durability.wal_with_snapshots(
        str(tmp_path / "durable"), snapshot_every=50, crash_after=crash_after
    )
    return single_private_database(
        database, [cap], engine="plaintext", durability=durability
    ), database


def _emissions(i):
    from repro.model.update import Update, UpdateOperation

    return Update(
        table="emissions", operation=UpdateOperation.INSERT,
        payload={"id": i, "co2": 5}, update_id=f"upd-{i:05d}",
    )


@pytest.mark.parametrize(
    "point", ["wal_update", "apply", "anchor_append", "anchor_marker"]
)
def test_crash_injection_never_forks_recovered_history(tmp_path, point):
    """Whatever pipeline stage the process dies at, the recovered
    ledger passes a fresh audit AND gossip cross-checks against an
    auditor who saw the pre-crash history — a crash must never present
    as a fork."""
    from repro.durability import SimulatedCrash

    framework, _ = _durable_framework(tmp_path)
    framework.submit_many([_emissions(i) for i in range(4)])
    witness = LedgerAuditor("pre-crash")
    assert witness.audit(framework.ledger).ok
    framework.close()

    crashing, _ = _durable_framework(tmp_path, crash_after=point)
    crashing.recover()
    with pytest.raises(SimulatedCrash):
        crashing.submit_many([_emissions(i) for i in range(10, 14)])

    recovered, _ = _durable_framework(tmp_path)
    report = recovered.recover()
    assert report.verified_against_anchor
    after = LedgerAuditor("post-recovery")
    assert after.audit(recovered.ledger).ok
    # The pre-crash witness sees the recovered ledger as an honest
    # extension (or identical history), never a fork.
    assert witness.cross_check(after, recovered.ledger)
    recovered.close()


def test_wal_bit_flip_is_caught_by_crc(tmp_path):
    """A single flipped bit anywhere in a decision record is caught by
    the frame CRC: recovery refuses instead of replaying altered
    history (bit rot is an integrity event, not a torn write)."""
    import os

    from repro.common.errors import WalCorruptionError
    from repro.durability import WriteAheadLog

    framework, _ = _durable_framework(tmp_path)
    framework.submit_many([_emissions(i) for i in range(6)])
    framework.close()
    wal_dir = str(tmp_path / "durable" / "wal")
    segment = WriteAheadLog.__new__(WriteAheadLog)  # path helper only
    segment.directory = wal_dir
    path = segment.segment_paths()[0]
    with open(path, "rb") as handle:
        buf = bytearray(handle.read())
    # Flip one payload bit in the FIRST record: damage followed by
    # valid records is provably not a torn write.  (Damage to the very
    # last record is indistinguishable from a tear and gets truncated.)
    buf[12] ^= 0x40
    with open(path, "wb") as handle:
        handle.write(buf)

    # The WAL opens (and refuses) at framework construction.
    with pytest.raises(WalCorruptionError):
        _durable_framework(tmp_path)
