"""Ledger persistence: dump/load with at-rest tamper detection."""

import pytest

from repro.common.errors import IntegrityError
from repro.ledger.central import CentralLedger


def filled(n=6):
    ledger = CentralLedger(name="audit-log")
    for i in range(n):
        ledger.append({"update": i, "blob": bytes([i])})
    return ledger


def test_dump_load_roundtrip(tmp_path):
    path = str(tmp_path / "ledger.jsonl")
    original = filled()
    original.dump(path)
    restored = CentralLedger.load(path)
    assert restored.name == "audit-log"
    assert len(restored) == len(original)
    assert restored.digest() == original.digest()
    assert restored.entry(3).payload == {"update": 3, "blob": b"\x03"}


def test_proofs_survive_reload(tmp_path):
    path = str(tmp_path / "ledger.jsonl")
    original = filled()
    digest = original.digest()
    original.dump(path)
    restored = CentralLedger.load(path)
    proof = restored.prove_inclusion(2)
    assert CentralLedger.verify_entry(digest, restored.entry(2), proof)


def test_tampered_file_rejected(tmp_path):
    path = str(tmp_path / "ledger.jsonl")
    filled().dump(path)
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    lines[3] = lines[3].replace('"update":2', '"update":999')
    with open(path, "w", encoding="utf-8") as handle:
        handle.writelines(lines)
    with pytest.raises(IntegrityError):
        CentralLedger.load(path)


def test_truncated_file_rejected(tmp_path):
    path = str(tmp_path / "ledger.jsonl")
    filled().dump(path)
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    with open(path, "w", encoding="utf-8") as handle:
        handle.writelines(lines[:-2])
    with pytest.raises(IntegrityError):
        CentralLedger.load(path)


def test_reordered_file_rejected(tmp_path):
    path = str(tmp_path / "ledger.jsonl")
    filled().dump(path)
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    lines[1], lines[2] = lines[2], lines[1]
    with open(path, "w", encoding="utf-8") as handle:
        handle.writelines(lines)
    with pytest.raises(IntegrityError):
        CentralLedger.load(path)


def test_empty_file_rejected(tmp_path):
    path = str(tmp_path / "empty.jsonl")
    open(path, "w").close()
    with pytest.raises(IntegrityError):
        CentralLedger.load(path)


def test_empty_ledger_roundtrips(tmp_path):
    path = str(tmp_path / "ledger.jsonl")
    CentralLedger(name="fresh").dump(path)
    restored = CentralLedger.load(path)
    assert len(restored) == 0
    assert restored.name == "fresh"


def test_reloaded_ledger_keeps_appending(tmp_path):
    path = str(tmp_path / "ledger.jsonl")
    original = filled(3)
    old_digest = original.digest()
    original.dump(path)
    restored = CentralLedger.load(path)
    restored.append({"update": 3, "blob": b"\x03"})
    proof = restored.prove_consistency(3, 4)
    assert CentralLedger.verify_extension(old_digest, restored.digest(), proof)
