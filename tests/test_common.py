"""Common infrastructure: serialization, ids, clocks, metrics, rng."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common import (
    SimClock,
    WallClock,
    MetricsRegistry,
    canonical_bytes,
    canonical_json,
    make_id,
    short_hash,
)
from repro.common.errors import SerializationError
from repro.common.randomness import (
    DeterministicRandomSource,
    SystemRandomSource,
    deterministic_rng,
)
from repro.common.serialization import from_canonical_json

json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**63), max_value=2**63)
    | st.text(max_size=20)
    | st.binary(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=12,
)


@given(value=json_values)
@settings(max_examples=100)
def test_canonical_roundtrip(value):
    restored = from_canonical_json(canonical_json(value))
    normalized = _tuples_to_lists(value)
    assert restored == normalized


def _tuples_to_lists(value):
    if isinstance(value, (list, tuple)):
        return [_tuples_to_lists(v) for v in value]
    if isinstance(value, dict):
        return {k: _tuples_to_lists(v) for k, v in value.items()}
    return value


def test_canonical_is_key_order_independent():
    assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})


def test_canonical_bytes_stable():
    assert canonical_bytes({"x": [1, b"\x00\xff"]}) == canonical_bytes(
        {"x": [1, b"\x00\xff"]}
    )


def test_non_string_keys_rejected():
    with pytest.raises(SerializationError):
        canonical_json({1: "x"})


def test_unserializable_rejected():
    with pytest.raises(SerializationError):
        canonical_json(object())


def test_to_dict_objects_supported():
    class Thing:
        def to_dict(self):
            return {"kind": "thing"}

    assert canonical_json(Thing()) == '{"kind":"thing"}'


def test_make_id_unique_and_prefixed():
    ids = {make_id("upd") for _ in range(100)}
    assert len(ids) == 100
    assert all(i.startswith("upd-") for i in ids)


def test_make_id_with_entropy_suffix():
    assert make_id("x", b"payload").count("-") == 2


def test_short_hash_length():
    assert len(short_hash(b"data")) == 8
    assert len(short_hash(b"data", 16)) == 16


def test_sim_clock_monotonic():
    clock = SimClock()
    clock.advance(5)
    assert clock.now() == 5
    clock.advance_to(7.5)
    assert clock.now() == 7.5
    with pytest.raises(ValueError):
        clock.advance(-1)
    with pytest.raises(ValueError):
        clock.advance_to(3)


def test_wall_clock_moves():
    clock = WallClock()
    a = clock.now()
    assert clock.now() >= a


def test_metrics_counters_and_timers():
    metrics = MetricsRegistry()
    metrics.counter("ops").add()
    metrics.counter("ops").add(2.5)
    assert metrics.counter("ops").count == 2
    assert metrics.counter("ops").total == 3.5
    timer = metrics.timer("t")
    for v in (0.1, 0.2, 0.3):
        timer.record(v)
    assert abs(timer.mean - 0.2) < 1e-9
    assert timer.percentile(50) == 0.2
    snap = metrics.snapshot()
    assert snap["counters"]["ops"]["count"] == 2
    assert snap["timers"]["t"]["n"] == 3


def test_metrics_timed_context():
    metrics = MetricsRegistry()
    with metrics.timed("block"):
        pass
    assert len(metrics.timer("block").samples) == 1


def test_deterministic_rng_reproducible():
    a = deterministic_rng(9)
    b = deterministic_rng(9)
    assert [a.randbelow(100) for _ in range(10)] == [
        b.randbelow(100) for _ in range(10)
    ]


def test_rng_bounds():
    for source in (SystemRandomSource(), DeterministicRandomSource(1)):
        assert 0 <= source.randbelow(10) < 10
        assert 5 <= source.randrange(5, 8) < 8
        with pytest.raises(ValueError):
            source.randbelow(0)
        with pytest.raises(ValueError):
            source.randrange(5, 5)
