"""Sigma-protocol ZKPs: dlog, equality, bits, ranges, bounds."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import IntegrityError
from repro.crypto import zkp


def test_dlog_proof_roundtrip(group):
    y, proof = zkp.prove_dlog(group, group.g, 9876)
    assert zkp.verify_dlog(group, group.g, y, proof)


def test_dlog_proof_wrong_statement_rejected(group):
    y, proof = zkp.prove_dlog(group, group.g, 9876)
    wrong_y = group.power(group.g, 9877)
    assert not zkp.verify_dlog(group, group.g, wrong_y, proof)


def test_dlog_proof_nonmember_rejected(group):
    y, proof = zkp.prove_dlog(group, group.g, 5)
    from repro.crypto.zkp import DlogProof

    bad = DlogProof(commitment=group.p - 1, response=proof.response)
    assert not zkp.verify_dlog(group, group.g, y, bad)


def test_commitment_equality(committer):
    group = committer.group
    r1, r2 = group.random_exponent(), group.random_exponent()
    proof = zkp.prove_commitment_equality(committer, 77, r1, r2)
    c1 = committer.commit_with(77, r1)
    c2 = committer.commit_with(77, r2)
    assert zkp.verify_commitment_equality(committer, c1, c2, proof)


def test_commitment_equality_rejects_different_messages(committer):
    group = committer.group
    r1, r2 = group.random_exponent(), group.random_exponent()
    proof = zkp.prove_commitment_equality(committer, 77, r1, r2)
    c1 = committer.commit_with(77, r1)
    c_other = committer.commit_with(78, r2)
    assert not zkp.verify_commitment_equality(committer, c1, c_other, proof)


@pytest.mark.parametrize("bit", [0, 1])
def test_bit_proof_valid(committer, bit):
    r = committer.group.random_exponent()
    proof = zkp.prove_bit(committer, bit, r)
    commitment = committer.commit_with(bit, r)
    assert zkp.verify_bit(committer, commitment, proof)


def test_bit_proof_cannot_be_built_for_nonbit(committer):
    with pytest.raises(IntegrityError):
        zkp.prove_bit(committer, 2, committer.group.random_exponent())


def test_bit_proof_rejected_for_wrong_commitment(committer):
    r = committer.group.random_exponent()
    proof = zkp.prove_bit(committer, 1, r)
    other = committer.commit_with(2, r)  # commits to 2, not a bit
    assert not zkp.verify_bit(committer, other, proof)


@given(value=st.integers(min_value=0, max_value=255))
@settings(max_examples=8, deadline=None)
def test_range_proof_roundtrip(committer, value):
    commitment, _, proof = zkp.prove_range(committer, value, bits=8)
    assert zkp.verify_range(committer, commitment, proof)


def test_range_proof_out_of_range_value_refused(committer):
    with pytest.raises(IntegrityError):
        zkp.prove_range(committer, 256, bits=8)


def test_range_proof_rejects_mismatched_commitment(committer):
    commitment, _, proof = zkp.prove_range(committer, 10, bits=8)
    other, _, _ = zkp.prove_range(committer, 11, bits=8)
    assert not zkp.verify_range(committer, other, proof)


def test_range_proof_rejects_truncated_bits(committer):
    from repro.crypto.zkp import RangeProof

    commitment, _, proof = zkp.prove_range(committer, 10, bits=8)
    truncated = RangeProof(
        bits=8,
        bit_commitments=proof.bit_commitments[:-1],
        bit_proofs=proof.bit_proofs[:-1],
    )
    assert not zkp.verify_range(committer, commitment, truncated)


def test_upper_bound_proof_accepts_true_statement(committer):
    commitment, _, proof = zkp.prove_upper_bound(committer, 35, 40, bits=8)
    assert zkp.verify_upper_bound(committer, commitment, proof)


def test_upper_bound_proof_boundary(committer):
    commitment, _, proof = zkp.prove_upper_bound(committer, 40, 40, bits=8)
    assert zkp.verify_upper_bound(committer, commitment, proof)


def test_upper_bound_proof_refuses_false_statement(committer):
    with pytest.raises(IntegrityError):
        zkp.prove_upper_bound(committer, 41, 40, bits=8)


def test_upper_bound_proof_rejects_swapped_commitment(committer):
    c1, _, proof1 = zkp.prove_upper_bound(committer, 10, 40, bits=8)
    c2, _, _ = zkp.prove_upper_bound(committer, 20, 40, bits=8)
    assert not zkp.verify_upper_bound(committer, c2, proof1)


def test_zero_knowledge_shape(committer):
    """Proofs for different values have identical structure — a
    verifier learns nothing from proof sizes."""
    _, _, p1 = zkp.prove_range(committer, 0, bits=8)
    _, _, p2 = zkp.prove_range(committer, 255, bits=8)
    assert len(p1.bit_commitments) == len(p2.bit_commitments)
    assert len(p1.bit_proofs) == len(p2.bit_proofs)
