"""DSL round-trip: parse(unparse(c)) must be semantically c.

Hypothesis generates random constraints, unparses them to text,
re-parses, and checks the two agree on randomly generated databases and
updates — fuzzing both directions of the language at once.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.database.engine import Database
from repro.database.expr import BinOp, Col, Lit, Not, UpdateField
from repro.database.schema import ColumnType, TableSchema
from repro.model.constraints import (
    AggregateSpec,
    Comparison,
    Constraint,
    ConstraintKind,
    WindowSpec,
)
from repro.model.dsl import constraint_to_text, expr_to_text, parse_constraint
from repro.model.update import Update, UpdateOperation

COLUMNS = ["hours", "amount", "worker"]
UPDATE_FIELDS = ["hours", "amount"]


# -- expression strategies --------------------------------------------------------

numeric_leaf = st.one_of(
    st.integers(0, 50).map(Lit),
    st.sampled_from(["hours", "amount"]).map(Col),
    st.sampled_from(UPDATE_FIELDS).map(UpdateField),
)

numeric_expr = st.recursive(
    numeric_leaf,
    lambda children: st.tuples(
        st.sampled_from(["+", "-", "*"]), children, children
    ).map(lambda t: BinOp(t[0], t[1], t[2])),
    max_leaves=5,
)

comparison_expr = st.tuples(
    st.sampled_from(["<=", ">=", "<", ">", "=="]), numeric_expr, numeric_expr
).map(lambda t: BinOp(t[0], t[1], t[2]))

bool_expr = st.recursive(
    comparison_expr,
    lambda children: st.one_of(
        st.tuples(st.sampled_from(["and", "or"]), children, children).map(
            lambda t: BinOp(t[0], t[1], t[2])
        ),
        children.map(Not),
    ),
    max_leaves=4,
)


def tasks_db(rows):
    db = Database("d")
    db.create_table(TableSchema.build(
        "tasks",
        [("task_id", ColumnType.TEXT), ("worker", ColumnType.TEXT),
         ("hours", ColumnType.INT), ("amount", ColumnType.INT),
         ("at", ColumnType.FLOAT)],
        primary_key=["task_id"],
        nullable=["at"],
    ))
    for i, (worker, hours, amount, at) in enumerate(rows):
        db.insert("tasks", {"task_id": f"t{i}", "worker": worker,
                            "hours": hours, "amount": amount, "at": at})
    return db


def make_update(worker, hours, amount, at=0.0):
    return Update(
        table="tasks", operation=UpdateOperation.INSERT,
        payload={"task_id": f"u-{worker}-{hours}-{amount}", "worker": worker,
                 "hours": hours, "amount": amount, "at": at},
    )


@given(expr=bool_expr, hours=st.integers(0, 20), amount=st.integers(0, 20))
@settings(max_examples=80, deadline=None)
def test_predicate_roundtrip(expr, hours, amount):
    original = Constraint(name="c", kind=ConstraintKind.INTERNAL,
                          predicate=expr, tables=("tasks",))
    reparsed = parse_constraint(constraint_to_text(original), name="c")
    db = tasks_db([("w", 3, 4, 0.0)])
    update = make_update("w", hours, amount)
    assert original.check([db], update, 0.0) == reparsed.check(
        [db], update, 0.0
    )


aggregate_constraints = st.builds(
    lambda func, column, match, window_len, cmp, bound: Constraint(
        name="agg", kind=ConstraintKind.REGULATION,
        aggregate=AggregateSpec(
            func=func,
            column=None if func == "COUNT" else column,
            match_columns=tuple(match),
            window=(WindowSpec(time_column="at", length=window_len)
                    if window_len else None),
        ),
        comparison=cmp,
        bound=float(bound),
        tables=("tasks",),
    ),
    func=st.sampled_from(["SUM", "COUNT"]),
    column=st.sampled_from(["hours", "amount"]),
    match=st.lists(st.sampled_from(["worker"]), max_size=1),
    window_len=st.sampled_from([0, 3600.0, 86400.0, 604800.0]),
    cmp=st.sampled_from([Comparison.LE, Comparison.GE, Comparison.LT,
                         Comparison.GT]),
    bound=st.integers(0, 60),
)


@given(constraint=aggregate_constraints,
       rows=st.lists(st.tuples(
           st.sampled_from(["w", "x"]), st.integers(0, 10),
           st.integers(0, 10), st.floats(0, 100)), max_size=5),
       hours=st.integers(0, 10))
@settings(max_examples=80, deadline=None)
def test_aggregate_roundtrip(constraint, rows, hours):
    text = constraint_to_text(constraint)
    reparsed = parse_constraint(text, name="agg",
                                kind=ConstraintKind.REGULATION)
    db = tasks_db(rows)
    update = make_update("w", hours, hours, at=50.0)
    assert constraint.check([db], update, now=50.0) == reparsed.check(
        [db], update, now=50.0
    ), text


def test_unparse_examples_read_naturally():
    flsa = Constraint(
        name="flsa", kind=ConstraintKind.REGULATION,
        aggregate=AggregateSpec(
            func="SUM", column="hours", match_columns=("worker",),
            window=WindowSpec(time_column="at", length=604800.0),
        ),
        comparison=Comparison.LE, bound=40.0, tables=("tasks",),
    )
    assert constraint_to_text(flsa) == (
        "SUM(hours) PER worker WITHIN 1w OF at <= 40 ON tasks"
    )


def test_unparse_in_and_strings():
    constraint = Constraint(
        name="c", kind=ConstraintKind.INTERNAL,
        predicate=BinOp("in", Col("worker"), Lit(("anne", "bob"))),
    )
    text = constraint_to_text(constraint)
    reparsed = parse_constraint(text)
    db = tasks_db([])
    assert reparsed.check([db], make_update("anne", 1, 1), 0.0)
    assert not reparsed.check([db], make_update("carol", 1, 1), 0.0)


def test_unparse_negative_literal():
    constraint = Constraint(
        name="c", kind=ConstraintKind.INTERNAL,
        predicate=BinOp(">", UpdateField("hours"), Lit(-5)),
    )
    reparsed = parse_constraint(constraint_to_text(constraint))
    db = tasks_db([])
    assert reparsed.check([db], make_update("w", 0, 0), 0.0)


def test_expr_to_text_rejects_unknown():
    class Weird:
        pass

    from repro.model.dsl import ConstraintSyntaxError

    with pytest.raises(ConstraintSyntaxError):
        expr_to_text(Weird())
