"""Pipeline robustness: apply failures, framework-level authenticated
reads."""

import pytest

from repro.common.errors import IntegrityError
from repro.core.framework import PReVer
from repro.database.engine import Database
from repro.database.schema import ColumnType, TableSchema
from repro.ledger.authenticated import verify_absence, verify_row
from repro.model.update import Update, UpdateOperation, UpdateStatus


def make_framework():
    db = Database("d")
    db.create_table(TableSchema.build(
        "events", [("id", ColumnType.INT), ("v", ColumnType.INT)],
        primary_key=["id"],
    ))
    return PReVer([db])


def insert(framework, i, v=0):
    return framework.submit(Update(
        table="events", operation=UpdateOperation.INSERT,
        payload={"id": i, "v": v},
    ))


def test_duplicate_key_insert_rejected_not_crashed():
    framework = make_framework()
    assert insert(framework, 1).applied
    result = insert(framework, 1)
    assert not result.applied
    assert result.update.status is UpdateStatus.REJECTED
    assert "apply failed" in result.update.rejection_reason
    assert result.outcome.failed_constraint == "apply-failure"
    # Both attempts are anchored.
    assert len(framework.ledger) == 2


def test_modify_missing_row_rejected():
    framework = make_framework()
    result = framework.submit(Update(
        table="events", operation=UpdateOperation.MODIFY,
        payload={"v": 9}, key=(404,),
    ))
    assert not result.applied
    assert "apply failed" in result.update.rejection_reason


def test_delete_missing_row_rejected():
    framework = make_framework()
    result = framework.submit(Update(
        table="events", operation=UpdateOperation.DELETE,
        payload={}, key=(404,),
    ))
    assert not result.applied


def test_schema_violation_rejected():
    framework = make_framework()
    result = framework.submit(Update(
        table="events", operation=UpdateOperation.INSERT,
        payload={"id": 1, "v": "not-an-int"},
    ))
    assert not result.applied


def test_state_continues_after_apply_failure():
    framework = make_framework()
    insert(framework, 1)
    insert(framework, 1)  # rejected
    assert insert(framework, 2).applied
    assert framework.databases[0].aggregate("events", "COUNT") == 2


# -- framework-level authenticated reads -------------------------------------------

def test_publish_and_prove_membership():
    framework = make_framework()
    insert(framework, 1, v=10)
    insert(framework, 2, v=20)
    commitment = framework.publish_state("events")
    kind, proof = framework.prove_query("events", (1,))
    assert kind == "row"
    assert proof.row["v"] == 10
    assert verify_row(commitment, proof)


def test_publish_and_prove_absence():
    framework = make_framework()
    insert(framework, 1)
    commitment = framework.publish_state("events")
    kind, proof = framework.prove_query("events", (99,))
    assert kind == "absent"
    assert verify_absence(commitment, proof)


def test_commitments_interleave_with_decisions_on_one_ledger():
    framework = make_framework()
    insert(framework, 1)
    framework.publish_state("events")
    insert(framework, 2)
    framework.publish_state("events")
    # 2 decisions + 2 commitments, one auditable history.
    assert len(framework.ledger) == 4
    from repro.ledger.audit import LedgerAuditor

    assert LedgerAuditor().audit(framework.ledger, spot_check=2).ok


def test_prove_before_publish_raises():
    framework = make_framework()
    with pytest.raises(IntegrityError):
        framework.prove_query("events", (1,))


def test_fresh_commitment_reflects_new_rows():
    framework = make_framework()
    insert(framework, 1)
    first = framework.publish_state("events")
    insert(framework, 2)
    second = framework.publish_state("events")
    assert first.root != second.root
    kind, proof = framework.prove_query("events", (2,))
    assert kind == "row" and verify_row(second, proof)
    assert not verify_row(first, proof)
