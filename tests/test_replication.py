"""The pluggable replication core: driver equivalence, replica
convergence, crash/catch-up, and the sharded ``consensus=`` knob.

The contract under test, layer by layer:

* **LocalDriver is invisible** — ``PReVer(replication=LocalDriver())``
  must reproduce the pre-driver framework byte-for-byte (same pinned
  golden roots and WAL hashes as ``tests/test_pipeline_stages.py``):
  the decided stream is just the submission order, with no transport
  in the way.
* **Consensus drivers are order-equivalent** — Paxos/PBFT/SharPer
  order the same batches into the same total order (one proposer, so
  the only question is that retransmits, view-change no-ops, and
  decoys are deduplicated/filtered correctly), and a
  :class:`~repro.core.replicated.ReplicatedShard` replaying that
  stream converges every replica to the standalone framework's exact
  ledger root — for the plaintext *and* the Paillier engine, and for
  the WAL bytes when replicas are durable.
* **Crash/recovery** — a crashed replica restarts, replays its own WAL
  when durable, resynchronizes the rest via ``catch_up`` against the
  committed prefix, and reconverges to the live replicas' root.
* **The sharded front door** — ``consensus=`` plans produce the same
  root-of-roots and decisions as the plain sharded deployment, and
  cross-shard escalations order through the coordinator's driver.
"""

import functools
import os

import pytest

from repro.common.errors import IntegrityError, PReVerError
from repro.consensus.driver import (
    DecidedBatch,
    LocalDriver,
    PaxosDriver,
    PbftDriver,
    ReplicationPlan,
    SharperDriver,
    make_driver,
    resolve_plan,
)
from repro.core.framework import PReVer
from repro.core.replicated import ReplicatedShard
from repro.core.sharded import ShardedPReVer
from repro.durability import Durability

from tests.test_pipeline_stages import (
    BUILDERS,
    GOLDEN,
    build_plaintext,
    golden_stream,
    make_db,
    pinned_constraints,
    wal_sha256,
)
from tests.test_sharded import (
    sharded_stream,
    spanning_count_constraint,
    two_shard_specs,
)

DRIVER_FACTORIES = {
    "local": LocalDriver,
    "paxos": PaxosDriver,
    "pbft": PbftDriver,
    "sharper": SharperDriver,
}


def chunked(stream, size=8):
    return [stream[lo:lo + size] for lo in range(0, len(stream), size)]


# -- plan resolution ---------------------------------------------------------

def test_resolve_plan_forms():
    assert resolve_plan(None).kind == "local"
    assert resolve_plan("pbft").kind == "pbft"
    plan = ReplicationPlan(kind="paxos", replicas=3, profile="wan")
    assert resolve_plan(plan) is plan
    with pytest.raises(PReVerError):
        resolve_plan("raft")
    with pytest.raises(PReVerError):
        ReplicationPlan(kind="paxos", replicas=0)
    with pytest.raises(PReVerError):
        resolve_plan(42)


def test_make_driver_builds_every_kind():
    for kind, cls in (("local", LocalDriver), ("paxos", PaxosDriver),
                      ("pbft", PbftDriver), ("sharper", SharperDriver)):
        driver = make_driver(ReplicationPlan(kind=kind))
        assert isinstance(driver, cls)
        assert driver.name == kind
        driver.close()


# -- LocalDriver: byte-identical to the pre-driver framework -----------------

@pytest.mark.parametrize("engine", ["plaintext", "paillier"])
def test_local_driver_matches_pre_driver_goldens(engine, tmp_path):
    """The default-on driver changes nothing: same pinned golden root
    and WAL bytes as the driverless batched path."""
    framework = BUILDERS[engine](durability=Durability.wal(str(tmp_path)))
    framework.replication = LocalDriver()
    stream = golden_stream()
    results = []
    results.extend(framework.submit_many(stream[:8]))
    results.extend(framework.submit_many(stream[8:]))
    framework.close()
    golden = GOLDEN[(engine, "batched")]
    assert framework.ledger.digest().root.hex() == golden["root"]
    assert wal_sha256(str(tmp_path)) == golden["wal_sha256"]
    assert any(r.applied for r in results)
    assert any(not r.accepted for r in results)


def test_local_driver_sequential_matches_goldens(tmp_path):
    framework = build_plaintext(durability=Durability.wal(str(tmp_path)))
    framework.replication = LocalDriver()
    for update in golden_stream():
        framework.submit(update)
    framework.close()
    golden = GOLDEN[("plaintext", "sequential")]
    assert framework.ledger.digest().root.hex() == golden["root"]
    assert wal_sha256(str(tmp_path)) == golden["wal_sha256"]


# -- driver equivalence: consensus ordering reproduces the local stream ------

@pytest.mark.parametrize("kind", ["local", "paxos", "pbft", "sharper"])
@pytest.mark.parametrize("engine", ["plaintext", "paillier"])
def test_replicated_shard_converges_to_standalone_root(kind, engine):
    """Every driver's decided stream replays to the standalone
    framework's exact root on every replica — plaintext and Paillier."""
    standalone = BUILDERS[engine]()
    expected_decisions = []
    for batch in chunked(golden_stream()):
        expected_decisions.extend(
            r.applied for r in standalone.submit_many(batch)
        )
    expected_root = standalone.ledger.digest().root

    shard = ReplicatedShard(BUILDERS[engine], replicas=2,
                            driver=DRIVER_FACTORIES[kind](), name=kind)
    decisions = []
    for batch in chunked(golden_stream()):
        decisions.extend(r.applied for r in shard.submit_many(batch))
    assert decisions == expected_decisions
    # digest() re-asserts cross-replica convergence before returning.
    assert shard.digest().root == expected_root
    for replica in shard.replicas:
        assert replica.ledger.digest().root == expected_root
    stats = shard.stats()
    assert stats["decided"] == stats["proposed"] == len(
        chunked(golden_stream())
    )
    shard.close()


@pytest.mark.parametrize("kind", ["paxos", "pbft", "sharper"])
def test_replicated_shard_durable_wal_matches_standalone(kind, tmp_path):
    """Replica WAL bytes equal a standalone durable framework's over
    the same decided order (the replay path *is* the pipeline)."""
    standalone_dir = str(tmp_path / "standalone")
    standalone = build_plaintext(durability=Durability.wal(standalone_dir))
    for batch in chunked(golden_stream()):
        standalone.submit_many(batch)
    standalone.close()
    expected_sha = wal_sha256(standalone_dir)

    def build_durable(replica=0):
        return build_plaintext(
            durability=Durability.wal(str(tmp_path / f"r{replica}"))
        )

    shard = ReplicatedShard(build_durable, replicas=2,
                            driver=DRIVER_FACTORIES[kind](), name=kind)
    for batch in chunked(golden_stream()):
        shard.submit_many(batch)
    shard.close()
    for index in range(2):
        assert wal_sha256(str(tmp_path / f"r{index}")) == expected_sha


def test_decided_sequences_identical_across_drivers():
    """The decision *sequence* itself (payload order, dense sequence
    numbers) is driver-independent for one proposer."""
    streams = {}
    for kind, factory in DRIVER_FACTORIES.items():
        driver = factory()
        payloads = [{"updates": [{"n": n}]} for n in range(5)]
        for payload in payloads:
            driver.propose_batch(payload)
        decided = list(driver.catch_up(0))
        assert [d.sequence for d in decided] == list(range(5))
        streams[kind] = [d.payload for d in decided]
        driver.close()
    reference = streams.pop("local")
    for kind, payloads in streams.items():
        assert payloads == reference, kind


# -- crash / catch-up --------------------------------------------------------

@pytest.mark.parametrize("kind", ["paxos", "pbft"])
def test_replica_crash_and_catch_up_reconverges(kind):
    shard = ReplicatedShard(build_plaintext, replicas=3,
                            driver=DRIVER_FACTORIES[kind](), name="c")
    stream = golden_stream()
    shard.submit_many(stream[:8])
    shard.crash_replica(2)
    assert shard.replicas[2] is None
    shard.submit_many(stream[8:])  # serves from the 2 live replicas
    shard.restart_replica(2)
    root = shard.assert_converged()
    assert shard._applied == [2, 2, 2]
    # And the reconverged root is the standalone root.
    standalone = build_plaintext()
    standalone.submit_many(stream[:8])
    standalone.submit_many(stream[8:])
    assert root == standalone.ledger.digest().root


def test_durable_replica_recovers_wal_then_catches_up(tmp_path):
    """A durable replica restarts from its own WAL (recovery replays
    the first batch) and only replays the suffix via catch_up."""
    def build_durable(replica=0):
        return build_plaintext(
            durability=Durability.wal(str(tmp_path / f"r{replica}"))
        )

    shard = ReplicatedShard(build_durable, replicas=2,
                            driver=PaxosDriver(), name="d")
    stream = golden_stream()
    shard.submit_many(stream[:8])
    shard.crash_replica(1)
    shard.submit_many(stream[8:])
    framework = shard.restart_replica(1)
    assert shard._applied == [2, 2]
    assert framework.ledger.digest().root == shard.replicas[0].ledger.digest().root
    shard.close()


def test_catch_up_rejects_gapped_prefix():
    shard = ReplicatedShard(build_plaintext, replicas=1,
                            driver=LocalDriver(), name="g")
    shard.submit_many(golden_stream()[:4])
    # Corrupt the committed prefix: drop the first decided batch.
    shard.driver._log[0] = DecidedBatch(
        sequence=1, payload=shard.driver._log[0].payload
    )
    shard._applied[0] = 0
    with pytest.raises(IntegrityError, match="gap"):
        shard.catch_up(0)


def test_divergent_replica_is_fail_closed():
    """Root divergence across replicas raises, never warns: poison one
    replica's ledger behind the shard's back and replay a batch."""
    shard = ReplicatedShard(build_plaintext, replicas=2,
                            driver=LocalDriver(), name="x")
    stream = golden_stream()
    shard.submit_many(stream[:4])
    shard.replicas[1].ledger.append({"poison": True})
    with pytest.raises(IntegrityError, match="diverged"):
        shard.submit_many(stream[4:8])


def test_replica_builder_must_not_replicate():
    def bad_build():
        framework = build_plaintext()
        framework.replication = LocalDriver()
        return framework

    with pytest.raises(PReVerError, match="must not attach"):
        ReplicatedShard(bad_build, replicas=1)


# -- the sharded consensus knob ----------------------------------------------

@pytest.mark.parametrize("kind", ["paxos", "pbft", "sharper"])
def test_sharded_consensus_matches_plain_deployment(kind):
    plain = ShardedPReVer(two_shard_specs())
    stream = sharded_stream()
    plain_results = plain.submit_many(stream)
    plain_root = plain.digest().root
    plain.close()

    backed = ShardedPReVer(two_shard_specs(), consensus=kind)
    results = backed.submit_many(sharded_stream())
    assert backed.digest().root == plain_root
    assert [r.applied for r in results] == [
        r.applied for r in plain_results
    ]
    report = backed.consensus_report()
    assert set(report) == {"s0", "s1", "coordinator"}
    assert all(stats["driver"] == kind for stats in report.values())
    backed.close()


def test_sharded_consensus_dict_plans_per_shard():
    """Per-shard plans: one consensus-backed shard next to a plain one,
    no coordinator driver."""
    plain = ShardedPReVer(two_shard_specs())
    stream = sharded_stream()
    plain.submit_many(stream)
    plain_root = plain.digest().root
    plain.close()

    mixed = ShardedPReVer(
        two_shard_specs(),
        consensus={"s0": ReplicationPlan(kind="paxos", replicas=2)},
    )
    mixed.submit_many(sharded_stream())
    assert mixed.digest().root == plain_root
    assert mixed.replication is None
    assert set(mixed.consensus_report()) == {"s0"}
    mixed.close()


def test_sharded_consensus_unknown_shard_name_is_refused():
    with pytest.raises(PReVerError, match="unknown shards"):
        ShardedPReVer(two_shard_specs(), consensus={"nope": "paxos"})


def test_sharded_consensus_requires_serial_dispatch():
    with pytest.raises(PReVerError, match='dispatch="serial"'):
        ShardedPReVer(two_shard_specs(), dispatch="process",
                      consensus="paxos")


def test_escalations_order_through_coordinator_driver():
    """Cross-shard rejections anchor on the escalation ledger in the
    coordinator driver's decided order, and the driver's stats see the
    proposals."""
    from repro.core.federated import TokenVerifier

    constraint = spanning_count_constraint(bound=3)
    backed = ShardedPReVer(two_shard_specs(), consensus="pbft")
    backed.register_cross_shard_constraint(constraint,
                                           TokenVerifier(constraint))
    results = backed.submit_many(sharded_stream(8))
    rejected = [r for r in results if not r.applied and r.shard is None]
    assert rejected, "the token budget must trip"
    assert len(backed.escalation_ledger) == len(rejected)
    coordinator = backed.consensus_report()["coordinator"]
    assert coordinator["decided"] == len(rejected)
    # Ledger order matches rejection order (decided order == proposal
    # order for one coordinator).
    anchored = [entry.payload["update_id"]
                for entry in backed.escalation_ledger.entries()]
    assert anchored == [r.update.update_id for r in rejected]
    backed.close()


def test_sharper_shards_share_one_ledger():
    """Sharper plans co-locate every pipeline shard (and the
    coordinator) as consensus shards of one SharPer ledger."""
    backed = ShardedPReVer(two_shard_specs(), consensus="sharper")
    ledgers = {
        handle.driver.ledger for handle in backed.shards
    }
    ledgers.add(backed.replication.ledger)
    assert len(ledgers) == 1
    names = set(next(iter(ledgers)).shards)
    assert names == {"s0", "s1", "coordinator"}
    backed.submit_many(sharded_stream(8))
    backed.close()


# -- observability ------------------------------------------------------------

def test_consensus_metrics_surface_on_the_registry():
    """The coordinator registry carries the driver timers/counters the
    ops plane exports over ``/metrics``."""
    backed = ShardedPReVer(two_shard_specs(), consensus="paxos")
    backed.submit_many(sharded_stream(8))
    assert backed.metrics.counter_value("consensus.batches_proposed") >= 2
    assert backed.metrics.counter_value("consensus.batches_decided") >= 2
    snapshot = backed.metrics.snapshot()
    assert "consensus.propose" in snapshot["timers"]
    assert "consensus.decide" in snapshot["timers"]
    assert "consensus.committed_lag" in snapshot["gauges"]
    backed.close()


def test_framework_replication_knob_binds_observability():
    """``PReVer(replication=...)`` routes batches through the driver
    and binds its metrics into the framework registry."""
    framework = PReVer([make_db()], replication=LocalDriver())
    for constraint in pinned_constraints():
        framework.register_constraint(constraint)
    results = framework.submit_many(golden_stream()[:8])
    assert len(results) == 8
    assert framework.metrics.counter_value("consensus.batches_decided") == 1
    assert framework.replication.stats()["delivered"] == 1
    framework.close()
