"""The blockchain-replicated spend registry: ordered double-spend
resolution among distrustful platforms."""

import pytest

from repro.privacy.replicated_registry import ReplicatedSpendRegistry
from repro.privacy.tokens import Token, TokenAuthority, TokenError, TokenWallet


@pytest.fixture(scope="module")
def authority():
    return TokenAuthority(budget_per_period=20, rsa_bits=512)


def fresh_tokens(authority, owner, count, period=1):
    wallet = TokenWallet(owner, authority.public_key)
    wallet.request_tokens(authority, period, count)
    return wallet.take(period, count)


def test_simple_spend_settles_accepted(authority):
    registry = ReplicatedSpendRegistry(authority.public_key)
    token = fresh_tokens(authority, "anne", 1)[0]
    tx_id = registry.submit_spend(token, "uber")
    assert registry.outcome(tx_id) is None  # not yet ordered
    outcomes = registry.settle()
    assert outcomes[tx_id] is True
    assert registry.is_spent(token.serial)
    assert registry.total_spent() == 1


def test_racing_double_spend_exactly_one_wins(authority):
    """Two platforms deposit the SAME token before consensus runs;
    ordering decides a single winner, deterministically."""
    registry = ReplicatedSpendRegistry(authority.public_key)
    token = fresh_tokens(authority, "bob", 1)[0]
    tx_uber = registry.submit_spend(token, "uber")
    tx_lyft = registry.submit_spend(token, "lyft")
    outcomes = registry.settle()
    assert sorted([outcomes[tx_uber], outcomes[tx_lyft]]) == [False, True]
    assert registry.total_spent() == 1


def test_replay_after_settlement_rejected(authority):
    registry = ReplicatedSpendRegistry(authority.public_key)
    token = fresh_tokens(authority, "carol", 1)[0]
    first = registry.submit_spend(token, "uber")
    registry.settle()
    replay = registry.submit_spend(token, "lyft")
    outcomes = registry.settle()
    assert registry.outcome(first) is True
    assert outcomes[replay] is False


def test_forged_signature_rejected_before_ordering(authority):
    registry = ReplicatedSpendRegistry(authority.public_key)
    forged = Token(serial="00" * 32, period=1, pseudonym="p", signature=7)
    with pytest.raises(TokenError):
        registry.submit_spend(forged, "uber")


def test_many_distinct_spends_all_accepted(authority):
    registry = ReplicatedSpendRegistry(authority.public_key)
    tokens = fresh_tokens(authority, "dave", 6)
    tx_ids = [
        registry.submit_spend(token, f"platform-{i % 3}")
        for i, token in enumerate(tokens)
    ]
    outcomes = registry.settle()
    assert all(outcomes[tx] for tx in tx_ids)
    assert registry.total_spent() == 6


def test_incremental_settlement(authority):
    registry = ReplicatedSpendRegistry(authority.public_key)
    first_batch = fresh_tokens(authority, "erin", 3)
    for token in first_batch:
        registry.submit_spend(token, "uber")
    assert len(registry.settle()) == 3
    second_batch = fresh_tokens(authority, "erin", 2, period=2)
    for token in second_batch:
        registry.submit_spend(token, "lyft")
    outcomes = registry.settle()
    assert len(outcomes) == 2  # only the new spends settle this round
    assert registry.total_spent() == 5


def test_any_participant_can_replay_the_chain(authority):
    registry = ReplicatedSpendRegistry(authority.public_key)
    tokens = fresh_tokens(authority, "fred", 4)
    for token in tokens:
        registry.submit_spend(token, "uber")
    registry.settle()
    rebuilt = registry.replay_from_chain()
    assert rebuilt == {t.serial for t in tokens}
    assert registry.chain.verify_chain()
