"""Centralized ledger (RC4-single): proofs, auditing, tamper detection."""

import pytest

from repro.common.errors import IntegrityError
from repro.ledger.audit import AuditOutcome, LedgerAuditor
from repro.ledger.central import CentralLedger, LedgerDigest


def filled(n=10):
    ledger = CentralLedger()
    for i in range(n):
        ledger.append({"update": i})
    return ledger


def test_append_and_read():
    ledger = filled(5)
    assert len(ledger) == 5
    assert ledger.entry(3).payload == {"update": 3}
    assert [e.payload["update"] for e in ledger.entries(since=3)] == [3, 4]


def test_entry_out_of_range():
    with pytest.raises(IntegrityError):
        filled(2).entry(5)


def test_digest_changes_with_appends():
    ledger = filled(3)
    d3 = ledger.digest()
    ledger.append({"update": 3})
    d4 = ledger.digest()
    assert d3.size == 3 and d4.size == 4
    assert d3.root != d4.root


def test_inclusion_proof_verifies_against_digest():
    ledger = filled(12)
    digest = ledger.digest()
    for i in (0, 5, 11):
        entry = ledger.entry(i)
        proof = ledger.prove_inclusion(i)
        assert CentralLedger.verify_entry(digest, entry, proof)


def test_inclusion_fails_for_wrong_entry():
    ledger = filled(12)
    digest = ledger.digest()
    proof = ledger.prove_inclusion(5)
    from repro.ledger.central import LedgerEntry

    fake = LedgerEntry(sequence=5, payload={"update": 999})
    assert not CentralLedger.verify_entry(digest, fake, proof)


def test_inclusion_fails_for_wrong_digest_size():
    ledger = filled(12)
    proof = ledger.prove_inclusion(5, size=10)
    assert not CentralLedger.verify_entry(ledger.digest(), ledger.entry(5), proof)


def test_consistency_between_digests():
    ledger = filled(6)
    old = ledger.digest()
    for i in range(6, 10):
        ledger.append({"update": i})
    new = ledger.digest()
    proof = ledger.prove_consistency(old.size, new.size)
    assert CentralLedger.verify_extension(old, new, proof)


def test_tamper_detected_by_consistency():
    ledger = filled(8)
    old = ledger.digest()
    ledger.tamper_rewrite(2, {"update": "evil"})
    ledger.append({"update": 8})
    new = ledger.digest()
    proof = ledger.prove_consistency(old.size, new.size)
    assert not CentralLedger.verify_extension(old, new, proof)


def test_tamper_out_of_range():
    with pytest.raises(IntegrityError):
        filled(2).tamper_rewrite(5, {})


# -- auditor -------------------------------------------------------------------

def test_auditor_first_contact_then_consistent():
    ledger = filled(5)
    auditor = LedgerAuditor()
    report = auditor.audit(ledger)
    assert report.outcome is AuditOutcome.FIRST_CONTACT
    ledger.append({"update": 5})
    report2 = auditor.audit(ledger)
    assert report2.outcome is AuditOutcome.CONSISTENT
    assert auditor.trusted_digest.size == 6


def test_auditor_detects_rewrite():
    ledger = filled(5)
    auditor = LedgerAuditor()
    auditor.audit(ledger)
    trusted_before = auditor.trusted_digest
    ledger.tamper_rewrite(1, {"update": "evil"})
    report = auditor.audit(ledger)
    assert report.outcome is AuditOutcome.TAMPERED
    assert not report.ok
    # The auditor must NOT adopt the tampered digest.
    assert auditor.trusted_digest == trusted_before


def test_auditor_detects_history_shrink():
    ledger = filled(5)
    auditor = LedgerAuditor()
    auditor.audit(ledger)
    shrunk = filled(3)  # an attacker serving an older/shorter fork
    report = auditor.audit(shrunk)
    assert report.outcome is AuditOutcome.TAMPERED
    assert "history shrank" in report.failures


def test_auditor_spot_checks():
    ledger = filled(20)
    auditor = LedgerAuditor()
    report = auditor.audit(ledger, spot_check=5)
    assert report.ok
    assert len(report.checked_entries) == 5


def test_auditor_never_needs_payload_plaintext():
    """Auditing works over opaque payloads (commitments) — the
    privacy-preserving RC4 requirement."""
    ledger = CentralLedger()
    for i in range(4):
        ledger.append({"commitment": f"c{i}", "ciphertext": "0xdead"})
    auditor = LedgerAuditor()
    assert auditor.audit(ledger, spot_check=2).ok
