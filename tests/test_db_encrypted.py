"""The encrypted-column store: the RC1 manager's view."""

import pytest

from repro.common.errors import PrivacyError
from repro.database.encrypted import (
    ColumnEncryption,
    EncryptedStoreError,
    EncryptedTable,
    EncryptionScheme,
)
from repro.database.schema import ColumnType, TableSchema


def plain_schema():
    return TableSchema.build(
        "salaries",
        [("emp", ColumnType.TEXT), ("dept", ColumnType.TEXT),
         ("salary", ColumnType.INT), ("note", ColumnType.TEXT)],
        primary_key=["emp"],
        nullable=["note"],
    )


def encryption():
    return ColumnEncryption(
        schemes={
            "emp": EncryptionScheme.DET,
            "salary": EncryptionScheme.AHE,
            "note": EncryptionScheme.RND,
        },
        master_key=b"m" * 32,
    )


def test_insert_and_encrypted_sum():
    enc = encryption()
    table = EncryptedTable(plain_schema(), enc)
    table.insert_plain({"emp": "ann", "dept": "eng", "salary": 100, "note": "x"})
    table.insert_plain({"emp": "bob", "dept": "eng", "salary": 150, "note": "y"})
    total = table.encrypted_sum("salary")
    assert enc.paillier.private_key.decrypt_signed(total) == 250


def test_homomorphic_update_of_cell():
    enc = encryption()
    table = EncryptedTable(plain_schema(), enc)
    key = table.insert_plain({"emp": "ann", "dept": "e", "salary": 100, "note": None})
    table.add_to_cell(key, "salary", enc.paillier.public_key.encrypt_signed(-20))
    assert enc.paillier.private_key.decrypt_signed(table.ahe_cell(key, "salary")) == 80


def test_det_lookup():
    enc = encryption()
    table = EncryptedTable(plain_schema(), enc)
    table.insert_plain({"emp": "ann", "dept": "e", "salary": 1, "note": None})
    det = enc.encrypt_cell("emp", "ann")
    assert len(table.lookup_det("emp", det)) == 1
    assert table.lookup_det("emp", enc.encrypt_cell("emp", "zed")) == []


def test_rnd_roundtrip_owner_side():
    enc = encryption()
    ct1 = enc.encrypt_cell("note", "hello world")
    ct2 = enc.encrypt_cell("note", "hello world")
    assert ct1 != ct2  # randomized
    assert enc.decrypt_cell("note", ct1) == "hello world"


def test_det_is_deterministic_but_one_way():
    enc = encryption()
    assert enc.encrypt_cell("emp", "ann") == enc.encrypt_cell("emp", "ann")
    with pytest.raises(PrivacyError):
        enc.decrypt_cell("emp", enc.encrypt_cell("emp", "ann"))


def test_manager_view_contains_no_plaintext():
    enc = encryption()
    table = EncryptedTable(plain_schema(), enc)
    table.insert_plain(
        {"emp": "secret-name", "dept": "eng", "salary": 123456, "note": "top secret"}
    )
    view = str(table.manager_visible_rows())
    assert "secret-name" not in view
    assert "123456" not in view
    assert "top secret" not in view
    assert "eng" in view  # dept is deliberately plaintext (public column)


def test_ahe_column_requires_ints():
    enc = encryption()
    with pytest.raises(EncryptedStoreError):
        enc.encrypt_cell("salary", "lots")


def test_primary_key_cannot_be_ahe():
    schemes = {"emp": EncryptionScheme.AHE}
    enc = ColumnEncryption(schemes=schemes, master_key=b"k" * 32)
    with pytest.raises(EncryptedStoreError):
        EncryptedTable(plain_schema(), enc)


def test_primary_key_cannot_be_rnd():
    enc = ColumnEncryption(
        schemes={"emp": EncryptionScheme.RND}, master_key=b"k" * 32
    )
    with pytest.raises(EncryptedStoreError):
        EncryptedTable(plain_schema(), enc)


def test_sum_over_missing_column_rejected():
    enc = encryption()
    table = EncryptedTable(plain_schema(), enc)
    with pytest.raises(EncryptedStoreError):
        table.encrypted_sum("dept")


def test_add_to_missing_row_rejected():
    enc = encryption()
    table = EncryptedTable(plain_schema(), enc)
    with pytest.raises(EncryptedStoreError):
        table.add_to_cell(("zed",), "salary", enc.paillier.public_key.encrypt(1))
