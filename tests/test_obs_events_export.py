"""The structured event log and the metric exporters."""

import json

from repro.common.metrics import Histogram, MetricsRegistry
from repro.obs.events import EventLog
from repro.obs.export import (
    METRICS_SCHEMA_VERSION,
    metrics_to_json,
    to_prometheus,
    write_metrics_json,
)


# -- event log ------------------------------------------------------------


def test_event_log_records_and_queries():
    log = EventLog()
    log.emit("rejection", timestamp=1.0, trace_id="t-1", reason="cap")
    log.emit("ledger_anchor", timestamp=2.0, trace_id="t-1", sequence=0)
    log.emit("ledger_anchor", timestamp=3.0, trace_id="t-2", sequence=1)
    assert len(log) == 3
    assert [e["seq"] for e in log.events()] == [0, 1, 2]
    assert log.kinds() == ["ledger_anchor", "rejection"]
    assert [e["kind"] for e in log.for_trace("t-1")] == [
        "rejection", "ledger_anchor",
    ]
    assert log.trace_ids() == ["t-1", "t-2"]


def test_event_log_jsonl_roundtrip(tmp_path):
    log = EventLog()
    log.emit("anchor", timestamp=1.5, digest=b"\x00\xff", sequence=7)
    path = tmp_path / "events.jsonl"
    assert log.write(str(path)) == 1
    records = EventLog.read_jsonl(str(path))
    assert records[0]["kind"] == "anchor"
    assert records[0]["digest"] == "00ff"  # bytes serialized as hex
    rebuilt = EventLog.from_records(records)
    assert rebuilt.events("anchor")[0]["sequence"] == 7


def test_event_log_jsonl_is_one_object_per_line():
    log = EventLog()
    for i in range(3):
        log.emit("tick", timestamp=float(i))
    lines = log.to_jsonl().splitlines()
    assert len(lines) == 3
    assert all(json.loads(line)["kind"] == "tick" for line in lines)


# -- histograms -----------------------------------------------------------


def test_histogram_cumulative_buckets():
    histogram = Histogram("latency", buckets=[0.1, 1.0])
    for value in (0.05, 0.5, 0.7, 5.0):
        histogram.observe(value)
    assert histogram.count == 4
    assert histogram.total == 6.25
    assert histogram.cumulative_buckets() == [
        (0.1, 1), (1.0, 3), (float("inf"), 4),
    ]


def test_histogram_via_registry_and_snapshot():
    metrics = MetricsRegistry()
    metrics.histogram("h", buckets=[1.0]).observe(0.5)
    assert metrics.histogram("h") is metrics.histogram("h")
    snap = metrics.snapshot()
    assert snap["histograms"]["h"]["count"] == 1
    assert snap["histograms"]["h"]["buckets"][-1]["le"] == float("inf")


def test_counter_value_reads_without_creating():
    metrics = MetricsRegistry()
    assert metrics.counter_value("never.touched") == 0
    assert "never.touched" not in metrics.snapshot()["counters"]
    metrics.counter("hits").add()
    assert metrics.counter_value("hits") == 1


# -- satellite regressions: percentile + sorted snapshots -----------------


def test_percentile_nearest_rank_regression():
    timer = MetricsRegistry().timer("t")
    for value in (1.0, 2.0, 3.0, 4.0):
        timer.record(value)
    assert timer.percentile(50) == 2.0  # was 3.0 before the fix
    assert timer.percentile(25) == 1.0
    assert timer.percentile(75) == 3.0
    assert timer.percentile(100) == 4.0
    assert timer.percentile(0) == 1.0


def test_snapshot_keys_are_sorted():
    metrics = MetricsRegistry()
    for name in ("zulu", "alpha", "mike"):
        metrics.counter(name).add()
        metrics.timer(name).record(0.1)
        metrics.histogram(name).observe(0.1)
    snap = metrics.snapshot()
    for section in ("counters", "timers", "histograms"):
        assert list(snap[section]) == ["alpha", "mike", "zulu"]


def test_throughput_report_stages_are_sorted():
    metrics = MetricsRegistry()
    metrics.counter("pipeline.updates").add()
    for stage in ("verify", "anchor", "apply", "authenticate"):
        metrics.timer(f"pipeline.stage.{stage}").record(0.1)
    report = metrics.throughput_report()
    assert list(report["stages"]) == [
        "anchor", "apply", "authenticate", "verify",
    ]


# -- exporters ------------------------------------------------------------


def populated_registry():
    metrics = MetricsRegistry()
    metrics.counter("net.messages").add()
    metrics.counter("net.messages").add()
    metrics.timer("pipeline.stage.verify").record(0.25)
    metrics.histogram("hop.latency", buckets=[0.1, 1.0]).observe(0.5)
    return metrics


def test_metrics_to_json_schema():
    doc = metrics_to_json(populated_registry())
    assert doc["schema_version"] == METRICS_SCHEMA_VERSION == 2
    assert doc["counters"]["net.messages"]["count"] == 2
    timer = doc["timers"]["pipeline.stage.verify"]
    assert set(timer) == {"n", "mean", "total", "p50", "p95", "p99", "max"}
    buckets = doc["histograms"]["hop.latency"]["buckets"]
    assert buckets[-1] == {"le": "+Inf", "count": 1}
    assert "gauges" in doc  # new in schema v2 (empty here)
    # The document must be JSON-serializable as-is (no inf, no bytes).
    json.dumps(doc)


def test_metrics_json_artifact_is_stable_across_runs(tmp_path):
    def run():
        metrics = MetricsRegistry()
        # Register in different orders; artifacts must still match.
        for name in ("b", "a", "c"):
            metrics.counter(name).add()
        return metrics

    path_one, path_two = tmp_path / "one.json", tmp_path / "two.json"
    write_metrics_json(run(), str(path_one))
    write_metrics_json(run(), str(path_two))
    assert path_one.read_text() == path_two.read_text()
    assert list(json.loads(path_one.read_text())["counters"]) == ["a", "b", "c"]


def test_prometheus_exposition_format():
    text = to_prometheus(populated_registry())
    assert "# TYPE repro_net_messages_total counter" in text
    assert "repro_net_messages_total 2.0" in text
    assert "# TYPE repro_pipeline_stage_verify_seconds summary" in text
    assert 'repro_pipeline_stage_verify_seconds{quantile="0.5"} 0.25' in text
    assert "repro_pipeline_stage_verify_seconds_count 1.0" in text
    assert "# TYPE repro_hop_latency histogram" in text
    assert 'repro_hop_latency_bucket{le="1.0"} 1.0' in text
    assert 'repro_hop_latency_bucket{le="+Inf"} 1.0' in text
    assert text.endswith("\n")


def test_prometheus_namespace_and_sanitization():
    metrics = MetricsRegistry()
    metrics.counter("weird name-with.bits").add()
    text = to_prometheus(metrics, namespace=None)
    assert "weird_name_with_bits_total 1.0" in text


# -- exporter edge cases (schema v2) --------------------------------------


def test_prometheus_p99_quantile_row():
    metrics = MetricsRegistry()
    timer = metrics.timer("stage")
    for i in range(100):
        timer.record(float(i + 1))
    text = to_prometheus(metrics)
    assert 'repro_stage_seconds{quantile="0.99"} 99.0' in text
    assert 'repro_stage_seconds{quantile="0.5"} 50.0' in text


def test_prometheus_gauge_section():
    metrics = MetricsRegistry()
    metrics.gauge("queue.depth").set(3)
    text = to_prometheus(metrics)
    assert "# TYPE repro_queue_depth gauge" in text
    assert "repro_queue_depth 3.0" in text


def test_empty_registry_exports():
    metrics = MetricsRegistry()
    text = to_prometheus(metrics)
    assert text == "\n" or text.strip() == ""  # no metrics, valid scrape
    doc = metrics_to_json(metrics)
    assert doc["schema_version"] == METRICS_SCHEMA_VERSION
    assert doc["counters"] == {}
    assert doc["gauges"] == {}
    assert doc["timers"] == {}
    assert doc["histograms"] == {}
    json.dumps(doc)


def test_non_finite_values_export_without_breaking_json():
    nan, inf = float("nan"), float("inf")
    metrics = MetricsRegistry()
    metrics.gauge("g.nan").set(nan)
    metrics.gauge("g.pos").set(inf)
    metrics.gauge("g.neg").set(-inf)
    text = to_prometheus(metrics)
    # Prometheus text format spells non-finite values literally.
    assert "repro_g_nan NaN" in text
    assert "repro_g_pos +Inf" in text
    assert "repro_g_neg -Inf" in text
    doc = metrics_to_json(metrics)
    assert doc["gauges"]["g.nan"]["value"] == "NaN"
    assert doc["gauges"]["g.pos"]["value"] == "+Inf"
    assert doc["gauges"]["g.neg"]["value"] == "-Inf"
    # Strict JSON (no Infinity/NaN literals) must accept the document.
    json.loads(json.dumps(doc, allow_nan=False))


def test_sanitization_collision_emits_type_header_once():
    metrics = MetricsRegistry()
    metrics.counter("net.messages").add()
    metrics.counter("net-messages").add()  # sanitizes to the same name
    text = to_prometheus(metrics)
    assert text.count("# TYPE repro_net_messages_total counter") == 1
    # Both samples still exported (they collapse onto one series name).
    assert text.count("repro_net_messages_total 1.0") == 2
