"""The discrete-event network simulator."""

import pytest

from repro.common.errors import ProtocolError
from repro.net.simnet import LatencyModel, Message, Node, SimNetwork


class Echo(Node):
    def __init__(self, name):
        super().__init__(name)
        self.received = []

    def on_message(self, message):
        self.received.append(message)
        if message.kind == "ping":
            self.send(message.src, "pong", {"n": message.body.get("n", 0)})


def pair():
    net = SimNetwork()
    a, b = Echo("a"), Echo("b")
    net.add_node(a)
    net.add_node(b)
    return net, a, b


def test_send_and_receive():
    net, a, b = pair()
    a.send("b", "ping", {"n": 1})
    net.run()
    assert [m.kind for m in b.received] == ["ping"]
    assert [m.kind for m in a.received] == ["pong"]


def test_latency_advances_clock():
    net, a, b = pair()
    a.send("b", "ping")
    net.run()
    assert net.clock.now() > 0


def test_deterministic_latency_without_jitter():
    net = SimNetwork(latency=LatencyModel(base=0.5, jitter=0.0))
    a, b = Echo("a"), Echo("b")
    net.add_node(a)
    net.add_node(b)
    a.send("b", "ping")
    net.run()
    assert abs(net.clock.now() - 1.0) < 1e-9  # ping + pong


def test_duplicate_node_rejected():
    net, a, b = pair()
    with pytest.raises(ProtocolError):
        net.add_node(Echo("a"))


def test_broadcast_excludes_self_by_default():
    net = SimNetwork()
    nodes = [Echo(f"n{i}") for i in range(3)]
    for node in nodes:
        net.add_node(node)
    nodes[0].broadcast("hello")
    net.run()
    assert not any(m.kind == "hello" for m in nodes[0].received)
    assert all(any(m.kind == "hello" for m in n.received) for n in nodes[1:])


def test_loss_rate_drops_messages():
    net = SimNetwork(loss_rate=1.0)
    a, b = Echo("a"), Echo("b")
    net.add_node(a)
    net.add_node(b)
    a.send("b", "ping")
    net.run()
    assert b.received == []
    assert net.metrics.counter("net.losses").count == 1


def test_partition_blocks_cross_group_traffic():
    net, a, b = pair()
    net.partition({"a"}, {"b"})
    a.send("b", "ping")
    net.run()
    assert b.received == []
    net.heal_partition()
    a.send("b", "ping")
    net.run()
    assert len(b.received) == 1


def test_timers_fire_in_order():
    net, a, b = pair()
    fired = []
    net.set_timer(2.0, lambda: fired.append("late"))
    net.set_timer(1.0, lambda: fired.append("early"))
    net.run()
    assert fired == ["early", "late"]
    assert net.clock.now() == 2.0


def test_cancelled_timer_does_not_fire_or_advance_clock():
    net, a, b = pair()
    fired = []
    timer = net.set_timer(5.0, lambda: fired.append("x"))
    net.cancel_timer(timer)
    a.send("b", "ping")
    net.run()
    assert fired == []
    assert net.clock.now() < 5.0  # cancelled timer didn't stretch time


def test_run_until_horizon():
    net, a, b = pair()
    net.set_timer(10.0, lambda: None)
    net.run(until=3.0)
    assert net.clock.now() == 3.0
    assert net.pending() == 1


def test_max_events_guard():
    class Looper(Node):
        def on_message(self, message):
            self.send(message.src, "loop")

    net = SimNetwork()
    x, y = Looper("x"), Looper("y")
    net.add_node(x)
    net.add_node(y)
    x.send("y", "loop")
    processed = net.run(max_events=100)
    assert processed == 100


def test_metrics_count_messages():
    net, a, b = pair()
    a.send("b", "ping")
    net.run()
    assert net.metrics.counter("net.messages").count == 2  # ping + pong


# -- telemetry accessors ----------------------------------------------------


def test_partition_drops_counted_separately_from_losses():
    net, a, b = pair()
    net.partition({"a"}, {"b"})
    a.send("b", "ping")
    a.send("b", "ping")
    net.run()
    assert net.metrics.counter_value("net.partition_drops") == 2
    assert net.metrics.counter_value("net.losses") == 0
    net.heal_partition()
    a.send("b", "ping")
    net.run()
    assert net.metrics.counter_value("net.partition_drops") == 2


def test_bytes_counter_accumulates_payload_size():
    net, a, b = pair()
    a.send("b", "ping", {"n": 1})
    net.run()
    telemetry = net.telemetry()
    assert telemetry["net.bytes"] > 0
    assert telemetry["net.bytes"] == net.metrics.counter("net.bytes").total


def test_message_count_property_matches_counter():
    net, a, b = pair()
    assert net.message_count == 0
    a.send("b", "ping")
    net.run()
    assert net.message_count == 2  # ping + pong
    assert net.message_count == net.metrics.counter("net.messages").count


def test_telemetry_reports_sorted_net_counters():
    net = SimNetwork(loss_rate=1.0)
    a, b = Echo("a"), Echo("b")
    net.add_node(a)
    net.add_node(b)
    net.partition({"a"}, {"b"})
    a.send("b", "ping")
    net.heal_partition()
    a.send("b", "ping")
    net.run()
    telemetry = net.telemetry()
    assert list(telemetry) == sorted(telemetry)
    assert telemetry["net.messages"] == 2
    assert telemetry["net.partition_drops"] == 1
    assert telemetry["net.losses"] == 1
    # Dropped sends still count as messages and bytes on the wire.
    assert telemetry["net.bytes"] > 0


def test_cluster_stats_use_message_count_accessor():
    from repro.consensus.pbft import PBFTCluster

    net = SimNetwork()
    cluster = PBFTCluster(f=1, network=net)
    cluster.submit({"cmd": 1})
    cluster.run()
    stats = cluster.stats()
    assert stats.messages == net.message_count
    assert stats.messages > 0
