"""The tracing core: spans, IDs, sinks, and the no-op default."""

import pytest

from repro.common.clock import SimClock
from repro.obs.events import EventLog
from repro.obs.tracing import NOOP_TRACER, NullTracer, Tracer


def sim_tracer():
    return Tracer(clock=SimClock())


def test_trace_and_span_ids_are_deterministic_counters():
    tracer = sim_tracer()
    root = tracer.start_trace("update")
    child = root.child("verify")
    assert root.trace_id.startswith("trace-")
    assert root.span_id.startswith("span-")
    assert child.trace_id == root.trace_id
    assert child.parent_id == root.span_id


def test_nested_spans_share_the_trace():
    tracer = sim_tracer()
    root = tracer.start_trace("update")
    verify = root.child("verify")
    crypto = verify.child("paillier.decrypt")
    assert crypto.trace_id == root.trace_id
    assert crypto.parent_id == verify.span_id
    crypto.end()
    verify.end()
    root.end()
    spans = tracer.traces()[root.trace_id]
    assert [s.name for s in spans] == ["paillier.decrypt", "verify", "update"]


def test_span_times_come_from_injected_clock():
    clock = SimClock()
    tracer = Tracer(clock=clock)
    span = tracer.start_span("stage")
    clock.advance(2.5)
    span.end()
    assert span.start_time == 0.0
    assert span.end_time == 2.5
    assert span.duration == 2.5


def test_explicit_timestamps_bypass_the_clock():
    tracer = sim_tracer()
    span = tracer.start_span("stage", start_time=10.0)
    span.end(end_time=12.0)
    assert span.duration == 2.0


def test_end_is_idempotent():
    tracer = sim_tracer()
    span = tracer.start_span("stage", start_time=1.0)
    span.end(end_time=2.0)
    span.end(end_time=99.0)
    assert span.end_time == 2.0
    assert len(tracer.finished_spans) == 1


def test_attributes_status_and_events():
    tracer = sim_tracer()
    span = tracer.start_span("verify")
    span.set_attribute("engine", "zkp").set_status("error")
    span.add_event("proof_rejected", constraint="cst-1")
    span.end()
    assert span.attributes["engine"] == "zkp"
    assert span.status == "error"
    assert span.events == [
        {"name": "proof_rejected", "attributes": {"constraint": "cst-1"}}
    ]


def test_context_manager_marks_errors_and_always_ends():
    tracer = sim_tracer()
    with pytest.raises(ValueError):
        with tracer.span("stage") as span:
            raise ValueError("boom")
    assert span.ended
    assert span.status == "error"
    assert "boom" in span.attributes["exception"]
    with tracer.span("fine"):
        pass
    assert tracer.finished_spans[-1].status == "ok"


def test_sinks_see_opens_closes_and_events():
    tracer = sim_tracer()
    log = EventLog()
    tracer.add_sink(log)
    with tracer.span("stage"):
        tracer.event("checkpoint", detail=1)
    assert log.kinds() == ["checkpoint", "span_close", "span_open"]


def test_spans_named():
    tracer = sim_tracer()
    for _ in range(3):
        tracer.start_span("anchor").end()
    tracer.start_span("verify").end()
    assert len(tracer.spans_named("anchor")) == 3


def test_null_tracer_is_disabled_and_absorbs_everything():
    assert NOOP_TRACER.enabled is False
    assert Tracer.enabled is True
    span = NOOP_TRACER.start_trace("update")
    # Full Span API, all no-ops, chainable, context-manager capable.
    assert span.set_attribute("k", "v") is span
    assert span.set_status("error") is span
    assert span.add_event("x") is span
    assert span.end() is span
    assert span.child("nested") is span
    with NOOP_TRACER.span("stage") as inner:
        inner.set_attribute("k", "v")
    NOOP_TRACER.event("ignored")
    assert NOOP_TRACER.traces() == {}
    assert NOOP_TRACER.spans_named("update") == []


def test_null_tracer_sinks_are_ignored():
    tracer = NullTracer()
    log = EventLog()
    tracer.add_sink(log)
    tracer.start_trace("update").end()
    tracer.event("x")
    assert len(log) == 0
