"""Golden equivalence suite for the staged-pipeline refactor.

The stage decomposition (``repro.core.pipeline``) must be invisible:
``submit`` and ``submit_many`` have to produce the *same bytes* the
monolithic pre-refactor framework produced — same decisions, same
ledger digests, same inclusion proofs, and the same WAL bytes.  The
streams below are fully deterministic (pinned update/constraint ids,
``SimClock`` timestamps), so the expected roots and WAL hashes were
captured once against the pre-refactor framework and pinned here as
golden constants.  If a refactor changes any of them, it changed
observable behavior, not just structure.

Traced runs stamp counter-based trace ids into anchored payloads, so
their digests depend on global id-counter state; those are checked
structurally instead (payloads identical after stripping ``trace_id``,
spans have the full validate → verify → apply → anchor shape).

Regenerate goldens (only after an *intentional* format change):

    PYTHONPATH=src python tests/test_pipeline_stages.py
"""

import hashlib
import os

import pytest

from repro.core.contexts import single_private_database
from repro.core.framework import PReVer
from repro.database.engine import Database
from repro.database.expr import lit, update_field
from repro.database.schema import ColumnType, TableSchema
from repro.durability import Durability
from repro.ledger.central import CentralLedger
from repro.model.constraints import (
    Constraint,
    ConstraintKind,
    upper_bound_regulation,
)
from repro.model.update import Update, UpdateOperation
from repro.obs.events import EventLog
from repro.obs.tracing import Tracer


# -- the deterministic workload ---------------------------------------------

def make_db(name="db"):
    db = Database(name)
    db.create_table(
        TableSchema.build(
            "events",
            [("id", ColumnType.INT), ("who", ColumnType.TEXT),
             ("amount", ColumnType.INT)],
            primary_key=["id"],
        )
    )
    return db


def pinned_constraints():
    """The cap + predicate pair with ids pinned for reproducibility."""
    template = upper_bound_regulation("cap", "events", "amount", 50, ["who"])
    cap = Constraint(
        name="cap", kind=ConstraintKind.INTERNAL,
        aggregate=template.aggregate, comparison=template.comparison,
        bound=50, tables=("events",), constraint_id="cst-cap",
    )
    positive = Constraint(
        name="positive", kind=ConstraintKind.INTERNAL,
        predicate=update_field("amount") > lit(0),
        constraint_id="cst-positive",
    )
    return [positive, cap]


def golden_stream():
    """Accepts, aggregate rejections, predicate rejections, a duplicate
    key (apply failure), and a MODIFY (cache invalidation) — every
    decision path the pipeline has."""
    stream = []
    for i in range(10):
        who = "alice" if i % 2 == 0 else "bob"
        amount = 20 if i < 6 else -5
        stream.append(Update(
            table="events", operation=UpdateOperation.INSERT,
            payload={"id": i, "who": who, "amount": amount},
            update_id=f"g-{i:04d}",
        ))
    stream.append(Update(  # duplicate primary key -> apply failure
        table="events", operation=UpdateOperation.INSERT,
        payload={"id": 0, "who": "alice", "amount": 5},
        update_id="g-dup",
    ))
    stream.append(Update(  # MODIFY mid-stream -> aggregate cache drop
        table="events", operation=UpdateOperation.MODIFY,
        payload={"amount": 1}, key=(1,), update_id="g-mod",
    ))
    stream.extend(Update(
        table="events", operation=UpdateOperation.INSERT,
        payload={"id": i, "who": "bob", "amount": 10},
        update_id=f"g-{i:04d}",
    ) for i in range(20, 24))
    return stream


def build_plaintext(durability=None, tracer=None):
    framework = PReVer([make_db()], durability=durability, tracer=tracer)
    for constraint in pinned_constraints():
        framework.register_constraint(constraint)
    return framework


def build_paillier(durability=None, tracer=None):
    db = make_db("mgr")
    regulation = upper_bound_regulation("cap", "events", "amount", 55, ["who"])
    regulation.constraint_id = "cst-cap"
    return single_private_database(
        db, [regulation], engine="paillier",
        durability=durability, tracer=tracer,
    )


BUILDERS = {"plaintext": build_plaintext, "paillier": build_paillier}

#: Golden constants captured against the pre-refactor monolithic
#: framework (PR 4 tree).  Keys: (engine, path); values: the ledger
#: root hex and the sha256 over the concatenated WAL segment bytes.
GOLDEN = {
    ("plaintext", "sequential"): {
        "root": "b961e7e0dd4f66b293c935fec090952a09a1d43ddae84782e1657415387c9bc7",
        "wal_sha256":
            "31468952bae8915e5c540347e7243b7a22a84d569794e1c4768e4d4f984eea5a",
    },
    ("plaintext", "batched"): {
        "root": "b961e7e0dd4f66b293c935fec090952a09a1d43ddae84782e1657415387c9bc7",
        "wal_sha256":
            "902eb907f554e3597916c34177851b6e2aa32da637139d6bc3b8ca6f95e94fa3",
    },
    ("paillier", "sequential"): {
        "root": "af2bcb005c02dd6135868fa20bfa37e1c4dad260e09d934b00479c52279a0ccb",
        "wal_sha256":
            "a13f7ae339a383aa4c9689231a62fa9a29ae4b67db5836c696d15621d0ef5da4",
    },
    ("paillier", "batched"): {
        "root": "af2bcb005c02dd6135868fa20bfa37e1c4dad260e09d934b00479c52279a0ccb",
        "wal_sha256":
            "5bb508a36c779ccedc129f33c5f8ac38838c8cd5c9a1b4318c10916aaedfedf0",
    },
}


def wal_sha256(state_dir):
    """sha256 over every WAL segment's bytes, oldest segment first."""
    wal_dir = os.path.join(state_dir, "wal")
    digest = hashlib.sha256()
    for name in sorted(os.listdir(wal_dir)):
        with open(os.path.join(wal_dir, name), "rb") as handle:
            digest.update(handle.read())
    return digest.hexdigest()


def run_path(engine, path, state_dir, tracer=None):
    """One engine x submission-path run under WAL durability; returns
    (framework, results)."""
    framework = BUILDERS[engine](
        durability=Durability.wal(state_dir), tracer=tracer
    )
    if path == "sequential":
        results = [framework.submit(u) for u in golden_stream()]
    else:
        stream = golden_stream()
        results = []
        # Two chunks so the batched WAL holds two anchor markers.
        results.extend(framework.submit_many(stream[:8]))
        results.extend(framework.submit_many(stream[8:]))
    framework.close()
    return framework, results


# -- golden tests ------------------------------------------------------------

@pytest.mark.parametrize("engine", ["plaintext", "paillier"])
@pytest.mark.parametrize("path", ["sequential", "batched"])
def test_pipeline_matches_pre_refactor_goldens(engine, path, tmp_path):
    framework, results = run_path(engine, path, str(tmp_path))
    golden = GOLDEN[(engine, path)]
    assert framework.ledger.digest().root.hex() == golden["root"], \
        "stage decomposition changed the anchored decision bytes"
    assert wal_sha256(str(tmp_path)) == golden["wal_sha256"], \
        "stage decomposition changed the WAL bytes"
    # The stream exercises every path.
    assert any(r.applied for r in results)
    assert any(r.outcome.failed_constraint == "apply-failure" for r in results)
    assert any(not r.accepted for r in results)


@pytest.mark.parametrize("engine", ["plaintext", "paillier"])
def test_sequential_and_batched_digests_interchange(engine, tmp_path):
    seq_fw, seq_results = run_path(engine, "sequential",
                                   str(tmp_path / "seq"))
    bat_fw, bat_results = run_path(engine, "batched", str(tmp_path / "bat"))
    assert len(seq_results) == len(bat_results)
    for s, b in zip(seq_results, bat_results):
        assert (s.accepted, s.applied) == (b.accepted, b.applied)
        assert s.ledger_sequence == b.ledger_sequence
        assert s.outcome.failed_constraint == b.outcome.failed_constraint
    seq_digest = seq_fw.ledger.digest()
    assert seq_digest.root == bat_fw.ledger.digest().root
    for sequence in range(len(bat_fw.ledger)):
        proof = bat_fw.ledger.prove_inclusion(sequence)
        entry = bat_fw.ledger.entry(sequence)
        assert CentralLedger.verify_entry(seq_digest, entry, proof)


# -- traced runs: structural equivalence -------------------------------------

def strip_trace_ids(framework):
    payloads = []
    for entry in framework.ledger.entries():
        payload = dict(entry.payload)
        assert payload.pop("trace_id", None) is not None, \
            "traced runs must stamp trace_id into anchored payloads"
        payloads.append(payload)
    return payloads


@pytest.mark.parametrize("engine", ["plaintext", "paillier"])
def test_traced_runs_match_untraced_payloads(engine, tmp_path):
    """With a recording tracer the anchored payloads must differ from
    the untraced ones *only* by the stamped trace_id, on both paths."""
    untraced_fw, _ = run_path(engine, "sequential", str(tmp_path / "u"))
    reference = [entry.payload for entry in untraced_fw.ledger.entries()]
    for path in ("sequential", "batched"):
        tracer = Tracer()
        log = EventLog()
        tracer.add_sink(log)
        framework, results = run_path(engine, path, str(tmp_path / path),
                                      tracer=tracer)
        assert strip_trace_ids(framework) == reference
        # Every update got a full-shape trace.
        spans_by_trace = {}
        for record in log.events("span_close"):
            spans_by_trace.setdefault(record["trace_id"], []).append(
                record["name"]
            )
        for result in results:
            names = spans_by_trace[result.trace_id]
            assert {"validate", "verify", "apply", "anchor"} <= set(names)


if __name__ == "__main__":
    import json
    out = {}
    import tempfile
    for engine in BUILDERS:
        for path in ("sequential", "batched"):
            with tempfile.TemporaryDirectory() as tmp:
                framework, _ = run_path(engine, path, tmp)
                out[f"{engine}/{path}"] = {
                    "root": framework.ledger.digest().root.hex(),
                    "wal_sha256": wal_sha256(tmp),
                }
    print(json.dumps(out, indent=2))
