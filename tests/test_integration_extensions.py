"""Capstone integration: the extension features composed into one
deployment — declarative regulations, a windowed range-indexed store,
distributed token issuance, authenticated reads, auditor gossip, and
PSI cross-platform checks, all in a single scenario.
"""

import pytest

from repro import (
    ColumnType,
    Database,
    TableSchema,
    Update,
    UpdateOperation,
    parse_regulation,
    single_private_database,
)
from repro.core.separ import SeparSystem
from repro.ledger.audit import LedgerAuditor
from repro.ledger.authenticated import (
    AuthenticatedTableView,
    verify_absence,
    verify_row,
)
from repro.privacy.psi import PSIParty, check_max_membership


def test_declarative_windowed_regulation_on_indexed_store():
    """DSL regulation + range index: same behaviour, indexed scan."""
    db = Database("mgr")
    db.create_table(TableSchema.build(
        "tasks",
        [("task_id", ColumnType.TEXT), ("worker", ColumnType.TEXT),
         ("hours", ColumnType.INT), ("completed_at", ColumnType.FLOAT)],
        primary_key=["task_id"],
    ))
    db.table("tasks").create_range_index("completed_at")
    regulation = parse_regulation(
        "SUM(hours) PER worker WITHIN 7d OF completed_at <= 40 ON tasks",
        name="flsa",
    )
    framework = single_private_database(db, [regulation], engine="plaintext")

    day = 86_400.0
    def submit(task_id, hours, at):
        framework.clock.advance_to(at)
        return framework.submit(Update(
            table="tasks", operation=UpdateOperation.INSERT,
            payload={"task_id": task_id, "worker": "w", "hours": hours,
                     "completed_at": at},
        ))

    assert submit("t1", 20, 0.0).accepted
    assert submit("t2", 20, 1 * day).accepted
    assert not submit("t3", 1, 2 * day).accepted       # 41 in-window
    assert submit("t4", 20, 8 * day).accepted          # t1 rolled out

    # Authenticated reads over the same store.
    view = AuthenticatedTableView(db.table("tasks"))
    commitment = view.snapshot()
    proof = view.prove_row(("t2",))
    assert verify_row(commitment, proof)
    assert verify_absence(commitment, view.prove_absent(("t3",)))

    # And the decision ledger audits clean.
    assert LedgerAuditor().audit(framework.ledger, spot_check=2).ok


def test_separ_with_all_extensions():
    """Separ + distributed authority + PSI exclusivity check +
    gossiping auditors over the spend ledger."""
    system = SeparSystem(["uber", "lyft", "grab"], weekly_hour_cap=20,
                         distributed_authority=3)
    for name in ("anne", "bob"):
        system.register_worker(name)

    assert system.complete_task("anne", "uber", 12).accepted
    assert system.complete_task("anne", "lyft", 8).accepted
    assert not system.complete_task("anne", "grab", 1).accepted
    assert system.complete_task("bob", "grab", 20).accepted

    # PSI JOIN-shaped regulation: no pseudonym on more than 2 platforms.
    period = system.current_period()
    parties = [
        PSIParty(name, {
            row["pseudonym"]
            for row in platform.database.table("tasks").rows()
        })
        for name, platform in system.platforms.items()
    ]
    assert check_max_membership(parties, limit=2)
    # anne is on exactly 2 platforms; a limit of 1 must trip.
    assert not check_max_membership(parties, limit=1)

    # Two independent auditors gossip over the spend ledger.
    auditor_a, auditor_b = LedgerAuditor("a"), LedgerAuditor("b")
    assert auditor_a.audit(system.registry.ledger).ok
    system.advance_weeks(1)
    system.complete_task("bob", "uber", 3)
    assert auditor_b.audit(system.registry.ledger).ok
    assert auditor_a.cross_check(auditor_b, system.registry.ledger)

    # Distributed-authority invariant: every signer agrees on issuance.
    for worker in ("anne", "bob"):
        counts = {
            signer.issued_count(worker, period)
            for signer in system.authority.signers
        }
        assert len(counts) == 1


def test_zkp_engine_with_parsed_lower_bound_regulation():
    """DSL -> GE regulation -> ZK lower-bound proofs, end to end."""
    db = Database("mgr")
    db.create_table(TableSchema.build(
        "reports",
        [("id", ColumnType.INT), ("org", ColumnType.TEXT),
         ("amount", ColumnType.INT)],
        primary_key=["id"],
    ))
    regulation = parse_regulation(
        "SUM(amount) PER org >= 10 ON reports", name="minimum"
    )
    framework = single_private_database(db, [regulation], engine="zkp")
    r1 = framework.submit(Update(
        table="reports", operation=UpdateOperation.INSERT,
        payload={"id": 1, "org": "x", "amount": 4},
    ))
    assert not r1.accepted
    r2 = framework.submit(Update(
        table="reports", operation=UpdateOperation.INSERT,
        payload={"id": 2, "org": "x", "amount": 12},
    ))
    assert r2.accepted
    # The manager's transcript holds commitments only.
    values = [v for k, v in framework.engine.manager_transcript
              if k == "commitment"]
    assert values and 12 not in values
