"""The four Figure-1 applications."""

import pytest

from repro.apps.conference import ConferenceRegistration
from repro.apps.crowdworking import CrowdworkingScenario
from repro.apps.supplychain import SLA, SupplyChainNetwork
from repro.apps.sustainability import CERT_TIERS, SustainabilityCertification
from repro.common.errors import ConstraintViolation, PrivacyError


# -- Figure 1(a): sustainability -----------------------------------------------

def test_sustainability_certification_flow():
    cert = SustainabilityCertification("acme", tier="gold")
    assert cert.report("energy", 150).accepted
    assert cert.report("waste", 100).accepted      # 250 == cap
    assert not cert.report("transport", 1).accepted
    assert cert.certified()
    assert cert.reported_total() == 250


def test_sustainability_tiers():
    platinum = SustainabilityCertification("green-co", tier="platinum")
    assert platinum.cap == CERT_TIERS["platinum"]
    assert not platinum.report("energy", 101).accepted
    with pytest.raises(ValueError):
        SustainabilityCertification("x", tier="bronze")


def test_sustainability_authority_sees_no_statistics():
    cert = SustainabilityCertification("acme", tier="silver")
    cert.report("energy", 333)
    view = cert.authority_view()
    ciphertexts = [v for k, v in view if k == "ciphertext"]
    assert ciphertexts and all(c != 333 for c in ciphertexts)


def test_sustainability_rejections_leave_database_clean():
    cert = SustainabilityCertification("acme", tier="platinum")
    cert.report("energy", 90)
    cert.report("energy", 90)  # rejected: 180 > 100
    assert cert.reported_total() == 90


# -- Figure 1(b): conference ------------------------------------------------------

@pytest.fixture()
def conference():
    return ConferenceRegistration(
        {"alice": True, "bob": False, "carol": True}
    )


def test_conference_vaccinated_admitted(conference):
    assert conference.register_in_person("alice").accepted
    assert conference.register_in_person("carol").accepted
    assert conference.in_person_count() == 2


def test_conference_unvaccinated_denied_in_person(conference):
    assert not conference.register_in_person("bob").accepted
    conference.register_online("bob")
    modes = {r["name"]: r["mode"] for r in conference.attendee_list()}
    assert modes == {"bob": "online"}


def test_conference_attendee_list_is_public_but_health_queries_private(conference):
    conference.register_in_person("alice")
    # The health-registry servers saw only random selector vectors.
    pir = conference.verifier.pir
    for kind, selector in pir.server_a.query_log:
        assert kind in ("read", "write")
    # And the venue's public list is readable by anyone.
    assert conference.attendee_list()[0]["name"] == "alice"


# -- Figure 1(c): crowdworking ------------------------------------------------------

def test_crowdworking_regulation_bites_and_holds():
    scenario = CrowdworkingScenario(workers=4, seed=11)
    summary = scenario.run_week(tasks_per_worker=15, max_task_hours=6)
    assert summary.tasks_attempted == 60
    assert summary.cap_rejections > 0
    assert scenario.no_worker_exceeded_cap()
    assert all(h <= 40 for h in summary.hours_by_worker.values())


def test_crowdworking_multi_week():
    scenario = CrowdworkingScenario(workers=2, seed=12)
    first = scenario.run_week(tasks_per_worker=12)
    second = scenario.run_week(tasks_per_worker=12)
    assert first.week == 0 and second.week == 1
    assert scenario.no_worker_exceeded_cap()


# -- Figure 1(d): supply chain ---------------------------------------------------------

@pytest.fixture()
def supply_chain():
    network = SupplyChainNetwork(["supplier", "manufacturer", "retailer"])
    network.agree_sla(SLA("supplier", "manufacturer", 100, window=60.0))
    network.agree_sla(SLA("manufacturer", "retailer", 50, window=60.0))
    return network


def test_supply_chain_sla_enforced(supply_chain):
    assert supply_chain.ship("supplier", "manufacturer", 70)
    assert not supply_chain.ship("supplier", "manufacturer", 40)
    assert supply_chain.ship("supplier", "manufacturer", 30)
    assert len(supply_chain.rejections) == 1


def test_supply_chain_window_rolls(supply_chain):
    supply_chain.ship("supplier", "manufacturer", 100)
    supply_chain.advance(61.0)
    assert supply_chain.ship("supplier", "manufacturer", 100)


def test_supply_chain_no_sla_no_flow(supply_chain):
    with pytest.raises(ConstraintViolation):
        supply_chain.ship("supplier", "retailer", 1)


def test_supply_chain_confidentiality(supply_chain):
    supply_chain.ship("supplier", "manufacturer", 10)
    supply_chain.internal_update("manufacturer", {"process": "trade-secret"})
    # The retailer cannot read the supplier->manufacturer flow.
    with pytest.raises(PrivacyError):
        supply_chain.flow_history("retailer", "supplier", "manufacturer")
    # Internal updates never leave the enterprise.
    assert "trade-secret" not in str(
        supply_chain.network.collaboration("supplier->manufacturer").ledger.entries()
    )


def test_supply_chain_integrity_audit(supply_chain):
    supply_chain.ship("supplier", "manufacturer", 10)
    assert supply_chain.verify_integrity("supplier")
    supply_chain.network.collaboration(
        "supplier->manufacturer"
    ).ledger.tamper_rewrite(0, {"units": 9999, "at": 0.0})
    assert not supply_chain.verify_integrity("supplier")
