"""Merkle trees: roots, inclusion proofs, consistency proofs.

Property tests exercise every (index, size) pair up to a bound plus
random larger trees via hypothesis — the proofs are the security core
of RC4, so coverage here is deliberately exhaustive.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import IntegrityError
from repro.crypto.merkle import (
    ConsistencyProof,
    InclusionProof,
    MerkleTree,
    leaf_hash,
    node_hash,
    verify_consistency,
    verify_inclusion,
)


def leaves(n):
    return [f"leaf-{i}".encode() for i in range(n)]


def test_empty_tree_root_is_defined():
    assert MerkleTree().root() == MerkleTree().root()
    assert len(MerkleTree()) == 0


def test_single_leaf_root_is_leaf_hash():
    tree = MerkleTree([b"only"])
    assert tree.root() == leaf_hash(b"only")


def test_two_leaf_root_structure():
    tree = MerkleTree([b"a", b"b"])
    assert tree.root() == node_hash(leaf_hash(b"a"), leaf_hash(b"b"))


def test_root_changes_with_any_leaf():
    base = MerkleTree(leaves(8)).root()
    for i in range(8):
        data = leaves(8)
        data[i] = b"changed"
        assert MerkleTree(data).root() != base


def test_append_returns_index_and_extends():
    tree = MerkleTree()
    assert tree.append(b"x") == 0
    assert tree.append(b"y") == 1
    assert len(tree) == 2


@pytest.mark.parametrize("n", range(1, 24))
def test_inclusion_proofs_all_indices(n):
    data = leaves(n)
    tree = MerkleTree(data)
    root = tree.root()
    for i in range(n):
        proof = tree.inclusion_proof(i)
        assert verify_inclusion(root, data[i], proof), (n, i)


@pytest.mark.parametrize("n", range(1, 24))
def test_inclusion_rejects_wrong_leaf(n):
    data = leaves(n)
    tree = MerkleTree(data)
    root = tree.root()
    proof = tree.inclusion_proof(n - 1)
    assert not verify_inclusion(root, b"forged", proof)


def test_inclusion_rejects_wrong_index_claim():
    data = leaves(8)
    tree = MerkleTree(data)
    proof = tree.inclusion_proof(3)
    forged = InclusionProof(leaf_index=4, tree_size=8, path=proof.path)
    assert not verify_inclusion(tree.root(), data[3], forged)


def test_inclusion_rejects_truncated_path():
    data = leaves(8)
    tree = MerkleTree(data)
    proof = tree.inclusion_proof(3)
    truncated = InclusionProof(3, 8, proof.path[:-1])
    assert not verify_inclusion(tree.root(), data[3], truncated)


def test_inclusion_proof_out_of_range():
    tree = MerkleTree(leaves(4))
    with pytest.raises(IntegrityError):
        tree.inclusion_proof(4)


@pytest.mark.parametrize("n", range(2, 20))
def test_consistency_all_prefixes(n):
    tree = MerkleTree(leaves(n))
    new_root = tree.root()
    for m in range(1, n + 1):
        proof = tree.consistency_proof(m, n)
        assert verify_consistency(tree.root(m), new_root, proof), (m, n)


def test_consistency_detects_rewrite():
    data = leaves(10)
    tree = MerkleTree(data)
    old_root = tree.root(6)
    tampered = list(data)
    tampered[2] = b"rewritten"
    new_tree = MerkleTree(tampered)
    proof = new_tree.consistency_proof(6, 10)
    assert not verify_consistency(old_root, new_tree.root(), proof)


def test_consistency_same_size_is_equality_check():
    tree = MerkleTree(leaves(5))
    proof = tree.consistency_proof(5, 5)
    assert verify_consistency(tree.root(), tree.root(), proof)
    assert not verify_consistency(b"x" * 32, tree.root(), proof)


def test_consistency_bad_sizes():
    tree = MerkleTree(leaves(5))
    with pytest.raises(IntegrityError):
        tree.consistency_proof(0, 5)
    with pytest.raises(IntegrityError):
        tree.consistency_proof(6, 5)


@given(st.integers(min_value=1, max_value=200),
       st.data())
@settings(max_examples=40, deadline=None)
def test_inclusion_random_trees(n, data):
    index = data.draw(st.integers(min_value=0, max_value=n - 1))
    entries = leaves(n)
    tree = MerkleTree(entries)
    proof = tree.inclusion_proof(index)
    assert verify_inclusion(tree.root(), entries[index], proof)


@given(st.integers(min_value=2, max_value=200), st.data())
@settings(max_examples=40, deadline=None)
def test_consistency_random_trees(n, data):
    m = data.draw(st.integers(min_value=1, max_value=n))
    tree = MerkleTree(leaves(n))
    proof = tree.consistency_proof(m, n)
    assert verify_consistency(tree.root(m), tree.root(n), proof)


def test_domain_separation_blocks_splicing():
    """A node hash reused as a leaf must not verify (0x00/0x01 prefixes)."""
    inner = node_hash(leaf_hash(b"a"), leaf_hash(b"b"))
    assert leaf_hash(inner) != inner
