"""The binary-tree continual-observation counter (paper ref [33])."""

import statistics

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import BudgetExhausted, PReVerError
from repro.privacy.continual import BinaryTreeCounter, NaiveContinualCounter
from repro.privacy.dp import LaplaceMechanism, PrivacyAccountant


def test_counter_tracks_the_stream():
    counter = BinaryTreeCounter(horizon=64, epsilon=50.0)
    for _ in range(40):
        counter.add(1.0)
    assert counter.true_count() == 40
    # Generous epsilon: the release is close to the truth.
    assert abs(counter.release() - 40) < 5


def test_counter_handles_fractional_and_negative_increments():
    counter = BinaryTreeCounter(horizon=16, epsilon=100.0, sensitivity=2.0)
    for value in [1.5, -0.5, 2.0, -1.0]:
        counter.add(value)
    assert counter.true_count() == pytest.approx(2.0)
    assert abs(counter.release() - 2.0) < 3


def test_single_budget_charge_for_unlimited_releases():
    """The headline property: releases are free after construction."""
    accountant = PrivacyAccountant(1.0)
    counter = BinaryTreeCounter(horizon=1024, epsilon=1.0,
                                accountant=accountant)
    assert accountant.remaining == pytest.approx(0.0)
    for i in range(100):
        counter.add(1.0)
        counter.release()  # no further charges, no exception
    assert counter.steps_consumed == 100


def test_naive_counter_budget_dies():
    accountant = PrivacyAccountant(1.0)
    naive = NaiveContinualCounter(epsilon=1.0, expected_releases=10,
                                  accountant=accountant)
    for _ in range(10):
        naive.add(1.0)
        naive.release()
    with pytest.raises(BudgetExhausted):
        naive.release()


def test_tree_error_beats_naive_at_many_releases():
    """With the same total epsilon and many releases, the tree
    mechanism's error is far smaller than the naive split."""
    releases = 256
    epsilon = 2.0
    tree = BinaryTreeCounter(horizon=releases, epsilon=epsilon,
                             mechanism=LaplaceMechanism(seed=1))
    naive = NaiveContinualCounter(epsilon=epsilon,
                                  expected_releases=releases,
                                  mechanism=LaplaceMechanism(seed=2))
    tree_errors = []
    naive_errors = []
    for i in range(releases):
        tree.add(1.0)
        naive.add(1.0)
        tree_errors.append(abs(tree.release() - tree.true_count()))
        naive_errors.append(abs(naive.release() - naive.true_count()))
    assert statistics.fmean(tree_errors) < statistics.fmean(naive_errors) / 3


def test_horizon_enforced():
    counter = BinaryTreeCounter(horizon=4, epsilon=1.0)
    for _ in range(4):
        counter.add()
    with pytest.raises(PReVerError):
        counter.add()


def test_sensitivity_enforced():
    counter = BinaryTreeCounter(horizon=4, epsilon=1.0, sensitivity=1.0)
    with pytest.raises(PReVerError):
        counter.add(5.0)


def test_parameter_validation():
    with pytest.raises(PReVerError):
        BinaryTreeCounter(horizon=0, epsilon=1.0)
    with pytest.raises(PReVerError):
        BinaryTreeCounter(horizon=4, epsilon=0)


def test_error_bound_is_honest():
    """The stated 95% bound should hold on most trials."""
    violations = 0
    trials = 30
    for seed in range(trials):
        counter = BinaryTreeCounter(horizon=128, epsilon=1.0,
                                    mechanism=LaplaceMechanism(seed=seed))
        for _ in range(100):
            counter.add(1.0)
        error = abs(counter.release() - counter.true_count())
        if error > counter.error_bound(0.95):
            violations += 1
    assert violations <= trials * 0.2


@given(steps=st.integers(1, 64))
@settings(max_examples=20)
def test_release_decomposition_is_exact_without_noise(steps):
    """With zero-noise injection the release equals the true count —
    validating the dyadic prefix decomposition itself."""

    class NoNoise:
        def sample(self, scale):
            return 0.0

    counter = BinaryTreeCounter(horizon=64, epsilon=1.0,
                                mechanism=NoNoise())
    for i in range(steps):
        counter.add(1.0)
    assert counter.release() == steps
