"""The Figure-2 pipeline: authorities, signed updates, apply, anchor."""

import pytest

from repro.common.errors import IntegrityError, PReVerError
from repro.core.framework import PReVer
from repro.database.engine import Database
from repro.database.expr import lit, update_field
from repro.database.schema import ColumnType, TableSchema
from repro.ledger.audit import LedgerAuditor
from repro.model.constraints import (
    Constraint,
    ConstraintKind,
    upper_bound_regulation,
)
from repro.model.participants import Authority, DataProducer
from repro.model.update import Update, UpdateOperation, UpdateStatus


def make_db(name="db"):
    db = Database(name)
    db.create_table(
        TableSchema.build(
            "events",
            [("id", ColumnType.INT), ("who", ColumnType.TEXT),
             ("amount", ColumnType.INT)],
            primary_key=["id"],
        )
    )
    return db


def make_update(i, who="w", amount=10, operation=UpdateOperation.INSERT,
                key=None):
    payload = {"id": i, "who": who, "amount": amount}
    if operation is not UpdateOperation.INSERT:
        payload = {"amount": amount}
    return Update(table="events", operation=operation, payload=payload, key=key)


def test_pipeline_accept_apply_anchor():
    framework = PReVer([make_db()])
    framework.register_constraint(
        Constraint(name="positive", kind=ConstraintKind.INTERNAL,
                   predicate=update_field("amount") > lit(0))
    )
    result = framework.submit(make_update(1, amount=5))
    assert result.accepted and result.applied
    assert result.update.status is UpdateStatus.APPLIED
    assert result.ledger_sequence == 0
    assert framework.databases[0].table("events").get((1,)) is not None
    assert set(result.stage_timings) == {"authenticate", "verify", "apply",
                                         "anchor"}


def test_pipeline_reject_does_not_apply_but_still_anchors():
    framework = PReVer([make_db()])
    framework.register_constraint(
        Constraint(name="positive", kind=ConstraintKind.INTERNAL,
                   predicate=update_field("amount") > lit(0))
    )
    result = framework.submit(make_update(1, amount=-1))
    assert not result.accepted
    assert framework.databases[0].table("events").get((1,)) is None
    # Rejections are part of the audit trail.
    assert len(framework.ledger) == 1
    assert framework.decision_history()[0]["status"] == "rejected"


def test_modify_and_delete_operations():
    framework = PReVer([make_db()])
    framework.submit(make_update(1, amount=5))
    modify = make_update(1, operation=UpdateOperation.MODIFY, key=(1,),
                         amount=7)
    assert framework.submit(modify).applied
    assert framework.databases[0].table("events").get((1,))["amount"] == 7
    delete = Update(table="events", operation=UpdateOperation.DELETE,
                    payload={}, key=(1,))
    assert framework.submit(delete).applied
    assert framework.databases[0].table("events").get((1,)) is None


def test_signed_update_requirement():
    framework = PReVer([make_db()], require_signed_updates=True)
    unsigned = make_update(1)
    result = framework.submit(unsigned)
    assert not result.accepted
    assert result.outcome.failed_constraint == "unsigned update"

    producer = DataProducer("alice")
    signed = make_update(2).sign_with(producer)
    assert framework.submit(signed).accepted


def test_tampered_signature_rejected():
    framework = PReVer([make_db()], require_signed_updates=True)
    producer = DataProducer("alice")
    update = make_update(1).sign_with(producer)
    update.payload["amount"] = 999  # tamper after signing
    result = framework.submit(update)
    assert not result.accepted
    assert result.outcome.failed_constraint == "bad signature"


def test_regulation_requires_authority_signature():
    framework = PReVer([make_db()])
    regulation = upper_bound_regulation("cap", "events", "amount", 100, ["who"])
    with pytest.raises(IntegrityError):
        framework.register_constraint(regulation)
    authority = Authority("gov", external=True)
    framework.register_constraint(regulation, authority)
    assert framework.verify_constraint_provenance(regulation)


def test_internal_authority_cannot_issue_regulations():
    framework = PReVer([make_db()])
    regulation = upper_bound_regulation("cap", "events", "amount", 100, ["who"])
    internal = Authority("self", external=False)
    with pytest.raises(IntegrityError):
        framework.register_constraint(regulation, internal)


def test_provenance_check_fails_for_forged_regulation():
    framework = PReVer([make_db()])
    authority = Authority("gov", external=True)
    regulation = upper_bound_regulation("cap", "events", "amount", 100, ["who"])
    framework.register_constraint(regulation, authority)
    regulation.bound = 200  # tamper with the registered regulation
    assert not framework.verify_constraint_provenance(regulation)


def test_routing_to_named_manager_database():
    db1, db2 = make_db("uber"), make_db("lyft")
    framework = PReVer([db1, db2])
    update = make_update(1)
    update.managers.append("lyft")
    framework.submit(update)
    assert db2.table("events").get((1,)) is not None
    assert db1.table("events").get((1,)) is None


def test_acceptance_rate_and_metrics():
    framework = PReVer([make_db()])
    framework.register_constraint(
        Constraint(name="positive", kind=ConstraintKind.INTERNAL,
                   predicate=update_field("amount") > lit(0))
    )
    framework.submit(make_update(1, amount=5))
    framework.submit(make_update(2, amount=-5))
    assert framework.acceptance_rate() == 0.5
    assert framework.metrics.counter("pipeline.accepted").count == 1
    assert framework.metrics.counter("pipeline.rejected").count == 1


def test_ledger_auditable_by_external_auditor():
    framework = PReVer([make_db()])
    for i in range(5):
        framework.submit(make_update(i))
    auditor = LedgerAuditor()
    assert auditor.audit(framework.ledger, spot_check=3).ok
    framework.submit(make_update(9))
    assert auditor.audit(framework.ledger).ok
    framework.ledger.tamper_rewrite(0, {"forged": True})
    assert not auditor.audit(framework.ledger).ok


def test_needs_a_database():
    with pytest.raises(PReVerError):
        PReVer([])


def test_constraint_table_scoping():
    framework = PReVer([make_db()])
    scoped = Constraint(
        name="other-table-only", kind=ConstraintKind.INTERNAL,
        predicate=lit(False), tables=("other",),
    )
    framework.register_constraint(scoped)
    # The constraint targets another table, so this update passes.
    assert framework.submit(make_update(1)).accepted
