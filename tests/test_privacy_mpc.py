"""MPC: share algebra, circuits, the RC2 protocol, and its privacy."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ProtocolError
from repro.privacy.mpc import MPCContext


def ctx(parties=3):
    return MPCContext(parties=parties)


def open_bits(context, shared_bits):
    return sum(
        context.open(bit) * (1 << i) for i, bit in enumerate(shared_bits.bits)
    )


# -- share algebra ------------------------------------------------------------

def test_share_open_roundtrip():
    context = ctx()
    assert context.open(context.share(12345)) == 12345


def test_linear_ops():
    context = ctx()
    a, b = context.share(10), context.share(4)
    assert context.open(context.add(a, b)) == 14
    assert context.open(context.sub(a, b)) == 6
    assert context.open(context.add_const(a, 5)) == 15
    assert context.open(context.mul_const(a, 3)) == 30


@given(a=st.integers(0, 2**40), b=st.integers(0, 2**40))
@settings(max_examples=25)
def test_beaver_multiplication(a, b):
    context = ctx()
    product = context.mul(context.share(a), context.share(b))
    assert context.open(product) == a * b % context.prime


def test_boolean_gates():
    context = ctx()
    for x in (0, 1):
        for y in (0, 1):
            sx, sy = context.share(x), context.share(y)
            assert context.open(context.bit_and(sx, sy)) == (x & y)
            assert context.open(context.bit_xor(sx, sy)) == (x ^ y)
            assert context.open(context.bit_or(sx, sy)) == (x | y)
        assert context.open(context.bit_not(context.share(x))) == 1 - x


# -- circuits --------------------------------------------------------------------

@given(a=st.integers(0, 255), b=st.integers(0, 255))
@settings(max_examples=15, deadline=None)
def test_ripple_carry_adder(a, b):
    context = ctx()
    total = context.add_bits(context.share_bits(a, 8), context.share_bits(b, 8))
    assert open_bits(context, total) == a + b


def test_sum_bits_many_values():
    context = MPCContext(parties=4)
    values = [13, 7, 22, 5]
    shared = [context.share_bits(v, 6) for v in values]
    assert open_bits(context, context.sum_bits(shared)) == sum(values)


@given(value=st.integers(0, 127), bound=st.integers(0, 127))
@settings(max_examples=15, deadline=None)
def test_comparison_circuit(value, bound):
    context = ctx()
    gt = context.greater_than_public(context.share_bits(value, 7), bound)
    assert context.open(gt) == (1 if value > bound else 0)


def test_comparison_edge_bounds():
    context = ctx()
    bits = context.share_bits(5, 4)
    assert context.open(context.greater_than_public(bits, 16)) == 0
    assert context.open(context.greater_than_public(bits, -1)) == 1
    assert context.open(context.leq_public(bits, 5)) == 1
    assert context.open(context.leq_public(bits, 4)) == 0


def test_share_bits_range_check():
    with pytest.raises(ProtocolError):
        ctx().share_bits(16, 4)
    with pytest.raises(ProtocolError):
        ctx().share_bits(-1, 4)


# -- the federated verification protocol -------------------------------------------

@given(values=st.lists(st.integers(0, 30), min_size=2, max_size=5),
       bound=st.integers(0, 120))
@settings(max_examples=15, deadline=None)
def test_protocol_matches_plaintext_semantics(values, bound):
    context = MPCContext(parties=len(values))
    result = context.verify_sum_upper_bound(values, bound, width=8)
    assert result == (sum(values) <= bound)


def test_protocol_input_count_check():
    with pytest.raises(ProtocolError):
        MPCContext(parties=3).verify_sum_upper_bound([1, 2], 10, 4)


def test_protocol_public_output_is_only_the_decision():
    """Everything publicly opened beyond the Beaver maskings is the
    single decision bit — the protocol's entire allowed leakage."""
    context = MPCContext(parties=3)
    context.verify_sum_upper_bound([10, 11, 12], 40, width=8)
    explicit_openings = context.opened_values
    assert explicit_openings == [1]  # just the decision


def test_protocol_cost_scales_with_parties():
    costs = {}
    for parties in (2, 4):
        context = MPCContext(parties=parties)
        context.verify_sum_upper_bound([1] * parties, 100, width=8)
        costs[parties] = context.metrics.counter("mpc.messages").total
    assert costs[4] > costs[2]


def test_protocol_cost_scales_with_width():
    costs = {}
    for width in (4, 12):
        context = MPCContext(parties=3)
        context.verify_sum_upper_bound([1, 1, 1], 100, width=width)
        costs[width] = context.dealer.triples_dealt
    assert costs[12] > 2 * costs[4]


def test_two_party_minimum():
    with pytest.raises(ProtocolError):
        MPCContext(parties=1)
