"""Randomized-schedule fuzzing of the consensus protocols.

Hypothesis varies network seeds (message interleavings), crash
patterns, and command mixes; the invariants must hold on every
schedule:

* agreement — no two nodes decide differently for any slot;
* validity — decided values were actually submitted (or protocol
  no-ops);
* durability — once decided, a slot never changes.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.consensus.paxos import PaxosCluster
from repro.consensus.pbft import PBFTCluster
from repro.net.simnet import LatencyModel, SimNetwork


def agreement_holds(nodes) -> bool:
    decided_slots = {}
    for node in nodes:
        for slot, value in node.log._decisions.items():
            if slot in decided_slots and str(decided_slots[slot]) != str(value):
                return False
            decided_slots[slot] = value
    return True


@given(seed=st.integers(0, 10_000),
       commands=st.integers(1, 12),
       crash=st.sampled_from([None, 3, 4]))
@settings(max_examples=25, deadline=None)
def test_paxos_agreement_under_random_schedules(seed, commands, crash):
    network = SimNetwork(
        latency=LatencyModel(base=0.001, jitter=0.002, seed=seed),
        seed=seed,
    )
    cluster = PaxosCluster(n=5, network=network)
    if crash is not None:
        cluster.crash(crash)
    for i in range(commands):
        cluster.submit({"op": i})
    cluster.run()
    assert agreement_holds(cluster.nodes)
    # With at most one crash, everything must decide.
    assert len(cluster.committed()) == commands
    # Validity: decided values were submitted.
    submitted = {str({"op": i}) for i in range(commands)}
    for value in cluster.committed():
        assert str(value) in submitted


@given(seed=st.integers(0, 10_000),
       commands=st.integers(1, 8),
       silent=st.sampled_from([None, 1, 2, 3]))
@settings(max_examples=20, deadline=None)
def test_pbft_agreement_under_random_schedules(seed, commands, silent):
    network = SimNetwork(
        latency=LatencyModel(base=0.001, jitter=0.002, seed=seed),
        seed=seed,
    )
    cluster = PBFTCluster(f=1, network=network, view_timeout=60.0)
    if silent is not None:
        cluster.nodes[silent].silence()
    for i in range(commands):
        cluster.submit({"tx": i})
    cluster.run()
    assert agreement_holds(cluster.nodes)
    assert len(cluster.committed()) == commands


@given(seed=st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_pbft_equivocation_never_violates_agreement(seed):
    network = SimNetwork(
        latency=LatencyModel(base=0.001, jitter=0.003, seed=seed),
        seed=seed,
    )
    cluster = PBFTCluster(f=1, network=network, view_timeout=0.5)
    cluster.nodes[0].equivocate = True
    cluster.submit({"tx": "target"})
    cluster.run()
    assert agreement_holds(cluster.nodes[1:])  # honest replicas


@given(seed=st.integers(0, 10_000),
       failover_at=st.integers(0, 4))
@settings(max_examples=15, deadline=None)
def test_paxos_decisions_survive_leader_changes(seed, failover_at):
    network = SimNetwork(
        latency=LatencyModel(base=0.001, jitter=0.002, seed=seed),
        seed=seed,
    )
    cluster = PaxosCluster(n=5, network=network)
    for i in range(failover_at + 1):
        cluster.submit({"op": i})
    cluster.run()
    before = dict(cluster.nodes[1].log._decisions)
    cluster.elect(1)
    cluster.submit({"op": "post-failover"})
    cluster.run()
    after = cluster.nodes[1].log._decisions
    # Durability: nothing decided before the failover changed.
    for slot, value in before.items():
        assert str(after[slot]) == str(value)
    assert agreement_holds(cluster.nodes)
