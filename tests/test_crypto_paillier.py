"""Paillier: correctness and the homomorphic laws."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.paillier import (
    PaillierCiphertext,
    PaillierError,
    PaillierPrivateKey,
    PaillierPublicKey,
    generate_paillier_keypair,
)

small_ints = st.integers(min_value=0, max_value=10**9)
signed_ints = st.integers(min_value=-10**8, max_value=10**8)


def test_encrypt_decrypt_roundtrip(paillier):
    for value in (0, 1, 42, 10**12):
        assert paillier.private_key.decrypt(paillier.public_key.encrypt(value)) == value


def test_crt_decrypt_matches_plain_decrypt(paillier):
    ct = paillier.public_key.encrypt(123456789)
    assert paillier.private_key.decrypt(ct) == paillier.private_key.decrypt_crt(ct)


@given(a=small_ints, b=small_ints)
@settings(max_examples=20, deadline=None)
def test_additive_homomorphism(paillier, a, b):
    pk, sk = paillier.public_key, paillier.private_key
    assert sk.decrypt(pk.encrypt(a) + pk.encrypt(b)) == (a + b) % pk.n


@given(a=small_ints, k=st.integers(min_value=0, max_value=1000))
@settings(max_examples=20, deadline=None)
def test_scalar_homomorphism(paillier, a, k):
    pk, sk = paillier.public_key, paillier.private_key
    assert sk.decrypt(pk.encrypt(a) * k) == (a * k) % pk.n


@given(a=signed_ints, b=signed_ints)
@settings(max_examples=20, deadline=None)
def test_signed_arithmetic(paillier, a, b):
    pk, sk = paillier.public_key, paillier.private_key
    total = sk.decrypt_signed(pk.encrypt_signed(a) + pk.encrypt_signed(b))
    assert total == a + b


def test_subtraction(paillier):
    pk, sk = paillier.public_key, paillier.private_key
    assert sk.decrypt_signed(pk.encrypt_signed(10) - pk.encrypt_signed(25)) == -15
    assert sk.decrypt_signed(pk.encrypt_signed(10) - 3) == 7


def test_plaintext_addition_operator(paillier):
    pk, sk = paillier.public_key, paillier.private_key
    assert sk.decrypt(pk.encrypt(5) + 7) == 12
    assert sk.decrypt(7 + pk.encrypt(5)) == 12


def test_rerandomize_changes_ciphertext_not_plaintext(paillier):
    pk, sk = paillier.public_key, paillier.private_key
    ct = pk.encrypt(99)
    ct2 = ct.rerandomize()
    assert ct2.value != ct.value
    assert sk.decrypt(ct2) == 99


def test_ciphertext_times_ciphertext_is_rejected(paillier):
    pk = paillier.public_key
    with pytest.raises(TypeError):
        pk.encrypt(2) * pk.encrypt(3)


def test_cross_key_addition_rejected(paillier):
    other = generate_paillier_keypair(128)
    with pytest.raises(PaillierError):
        paillier.public_key.encrypt(1) + other.public_key.encrypt(1)


def test_cross_key_decryption_rejected(paillier):
    other = generate_paillier_keypair(128)
    with pytest.raises(PaillierError):
        paillier.private_key.decrypt(other.public_key.encrypt(1))


def test_signed_range_check(paillier):
    with pytest.raises(PaillierError):
        paillier.public_key.encrypt_signed(paillier.public_key.n)


def test_mismatched_private_key_rejected(paillier):
    with pytest.raises(PaillierError):
        PaillierPrivateKey(public_key=PaillierPublicKey(n=15), p=3, q=7)


def test_distinct_encryptions_differ(paillier):
    pk = paillier.public_key
    assert pk.encrypt(7).value != pk.encrypt(7).value
