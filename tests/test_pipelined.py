"""Equivalence suite for the verify↔anchor overlap scheduler.

``submit_pipelined`` moves each batch's group-commit fsync into a
background thread so it overlaps the *next* batch's crypto prep — but
the overlap must be invisible: same decisions, same ledger roots, and
the same WAL bytes as running ``submit_many`` per batch.  The golden
stream and WAL hashing helpers come from ``test_pipeline_stages``, so
the pipelined schedule is pinned against the very same constants the
serial batched path is.
"""

import pytest

from repro.core.framework import PReVer
from repro.durability import Durability, SimulatedCrash
from repro.model.update import Update, UpdateOperation

from tests.test_pipeline_stages import (
    BUILDERS,
    GOLDEN,
    golden_stream,
    make_db,
    wal_sha256,
)


def run_pipelined(engine, state_dir, durability=True):
    framework = BUILDERS[engine](
        durability=Durability.wal(state_dir) if durability else None
    )
    stream = golden_stream()
    # Same two-chunk split as test_pipeline_stages.run_path's batched
    # branch, so WAL anchor markers land at identical offsets.
    results = framework.submit_pipelined([stream[:8], stream[8:]])
    framework.close()
    return framework, results


@pytest.mark.parametrize("engine", ["plaintext", "paillier"])
def test_pipelined_matches_batched_goldens(engine, tmp_path):
    """The overlapped schedule reproduces the serial batched path's
    pinned ledger root and WAL bytes exactly."""
    framework, results = run_pipelined(engine, str(tmp_path))
    golden = GOLDEN[(engine, "batched")]
    assert framework.ledger.digest().root.hex() == golden["root"], \
        "overlap scheduler changed the anchored decision bytes"
    assert wal_sha256(str(tmp_path)) == golden["wal_sha256"], \
        "overlap scheduler changed the WAL bytes"
    assert any(r.applied for r in results)
    assert any(not r.accepted for r in results)


@pytest.mark.parametrize("engine", ["plaintext", "paillier"])
def test_pipelined_matches_submit_many_results(engine, tmp_path):
    serial_fw = BUILDERS[engine](
        durability=Durability.wal(str(tmp_path / "serial"))
    )
    stream = golden_stream()
    serial_results = []
    serial_results.extend(serial_fw.submit_many(stream[:8]))
    serial_results.extend(serial_fw.submit_many(stream[8:]))
    serial_fw.close()

    pipelined_fw, pipelined_results = run_pipelined(
        engine, str(tmp_path / "pipelined")
    )
    assert len(serial_results) == len(pipelined_results)
    for s, p in zip(serial_results, pipelined_results):
        assert (s.accepted, s.applied) == (p.accepted, p.applied)
        assert s.ledger_sequence == p.ledger_sequence
        assert s.outcome.failed_constraint == p.outcome.failed_constraint
    assert serial_fw.ledger.digest().root == pipelined_fw.ledger.digest().root
    assert (wal_sha256(str(tmp_path / "serial"))
            == wal_sha256(str(tmp_path / "pipelined")))


def test_pipelined_without_durability_stays_threadless(tmp_path):
    """Durability off ⇒ no commit to overlap ⇒ the committer thread is
    never started, and results still match submit_many."""
    pipelined_fw = BUILDERS["plaintext"](durability=None)
    stream = golden_stream()
    results = pipelined_fw.submit_pipelined([stream[:8], stream[8:]])
    assert pipelined_fw._pipelined is not None
    assert pipelined_fw._pipelined._committer is None

    serial_fw = BUILDERS["plaintext"](durability=None)
    expected = []
    expected.extend(serial_fw.submit_many(stream[:8]))
    expected.extend(serial_fw.submit_many(stream[8:]))
    assert [r.accepted for r in results] == [r.accepted for r in expected]
    assert pipelined_fw.ledger.digest().root == serial_fw.ledger.digest().root


def test_pipelined_empty_batches(tmp_path):
    framework = BUILDERS["plaintext"](
        durability=Durability.wal(str(tmp_path))
    )
    assert framework.submit_pipelined([]) == []
    stream = golden_stream()
    results = framework.submit_pipelined([[], stream[:2], []])
    assert len(results) == 2
    framework.close()


def test_pipelined_many_small_batches_roundtrips_recovery(tmp_path):
    """Many overlapped commits in sequence, then a full crash-recovery
    cycle: the recovered framework must land on the same root."""
    state = str(tmp_path)
    framework = BUILDERS["plaintext"](durability=Durability.wal(state))
    stream = golden_stream()
    batches = [stream[i:i + 3] for i in range(0, len(stream), 3)]
    framework.submit_pipelined(batches)
    root = framework.ledger.digest().root
    framework.close()

    recovered = BUILDERS["plaintext"](durability=Durability.wal(state))
    report = recovered.recover()
    assert report.verified_against_anchor
    assert report.final_root == root.hex()
    assert recovered.ledger.digest().root == root


def test_pipelined_crash_injection_falls_back_to_serial(tmp_path):
    """Fault injection needs the serial WAL schedule; the scheduler
    must delegate to submit_many so the crash fires at the exact same
    point it would there."""
    durability = Durability.wal(str(tmp_path)).with_crash_after(
        "anchor_append"
    )
    framework = BUILDERS["plaintext"](durability=durability)
    stream = golden_stream()
    with pytest.raises(SimulatedCrash):
        framework.submit_pipelined([stream[:4], stream[4:8]])
    # No background commit may be pending after the crash path.
    assert (framework._pipelined is None
            or framework._pipelined._pending is None)


def test_pipelined_committer_telemetry_in_report(tmp_path):
    """The overlap's cost and win are measured, not inferred: deferred
    and overlapped commit counts, committer wait/lag seconds, and the
    queue-depth gauge surface in throughput_report's pipelined section."""
    framework = BUILDERS["plaintext"](
        durability=Durability.wal(str(tmp_path))
    )
    stream = golden_stream()
    batches = [stream[i:i + 4] for i in range(0, len(stream), 4)]
    framework.submit_pipelined(batches)
    framework.close()
    report = framework.throughput_report()
    pipelined = report["pipelined"]
    assert pipelined["deferred_commits"] == len(batches)
    # Every batch after the first overlaps the previous commit.
    assert pipelined["overlapped_commits"] == len(batches) - 1
    assert pipelined["committer_wait_seconds"] >= 0.0
    assert pipelined["committer_lag_seconds"] > 0.0
    assert pipelined["committer_queue_depth"] == 0  # drained
    # Wait/lag sample counts match the commit count.
    assert len(framework.metrics.timer("pipeline.committer_wait").samples) \
        == len(batches)
    assert len(framework.metrics.timer("pipeline.committer_lag").samples) \
        == len(batches)


def test_plain_runs_have_no_pipelined_report_section():
    framework = BUILDERS["plaintext"]()
    framework.submit_many(golden_stream())
    assert "pipelined" not in framework.throughput_report()


def test_pipelined_returns_fully_drained(tmp_path):
    """After submit_pipelined returns, no commit may still be in
    flight — the caller's durability guarantee matches submit_many's."""
    framework = PReVer(
        [make_db()], durability=Durability.wal(str(tmp_path))
    )
    good = Update(
        table="events", operation=UpdateOperation.INSERT,
        payload={"id": 1, "who": "alice", "amount": 5},
        update_id="ok-1",
    )
    results = framework.submit_pipelined([[good]])
    assert results[0].applied
    assert framework._pipelined._pending is None
    framework.close()
