"""Permissioned blockchain, SharPer sharding, Qanaat collaborations."""

import pytest

from repro.chain.blockchain import PermissionedBlockchain, Transaction
from repro.chain.qanaat import QanaatNetwork
from repro.chain.sharper import ShardedLedger
from repro.common.errors import IntegrityError, PrivacyError, ProtocolError


# -- permissioned blockchain -----------------------------------------------------

def chain(block_size=4):
    return PermissionedBlockchain(block_size=block_size)


def test_blocks_cut_at_block_size():
    bc = chain(block_size=3)
    for i in range(7):
        bc.submit_public({"v": i})
    bc.process()
    assert bc.height == 2  # 6 txs in 2 blocks, 1 pending
    last = bc.flush()
    assert last is not None and bc.height == 3


def test_chain_hash_links_and_verification():
    bc = chain(block_size=2)
    for i in range(4):
        bc.submit_public({"v": i})
    bc.process()
    assert bc.verify_chain()
    assert bc.block(1).prev_hash == bc.block(0).block_hash()


def test_chain_detects_block_tampering():
    bc = chain(block_size=2)
    for i in range(4):
        bc.submit_public({"v": i})
    bc.process()
    from dataclasses import replace

    tampered = replace(bc.block(0), tx_root=b"\x00" * 32)
    bc._blocks[0] = tampered
    assert not bc.verify_chain()


def test_transaction_inclusion_proof():
    bc = chain(block_size=4)
    for i in range(4):
        bc.submit_public({"v": i})
    bc.process()
    tx, proof = bc.prove_transaction(0, 2)
    assert PermissionedBlockchain.verify_transaction(bc.block(0), tx, proof)
    fake = Transaction(tx_id="tx-fake", channel="main", payload={"v": 99})
    assert not PermissionedBlockchain.verify_transaction(bc.block(0), fake, proof)


def test_private_collection_membership_enforced():
    bc = chain()
    bc.create_collection("deal", {"acme", "globex"})
    tx = bc.submit_private("deal", {"price": 42})
    collection = bc.collections["deal"]
    assert collection.get("acme", tx.private_hash) == {"price": 42}
    with pytest.raises(PrivacyError):
        collection.get("initech", tx.private_hash)


def test_private_payload_hash_matches_chain():
    bc = chain(block_size=1)
    bc.create_collection("deal", {"acme"})
    tx = bc.submit_private("deal", {"price": 42})
    bc.process()
    on_chain = bc.block(0).transactions[0]
    assert on_chain.private_hash == tx.private_hash
    assert on_chain.payload is None  # content never on chain
    assert bc.collections["deal"].verify_against_chain(on_chain.private_hash)


def test_duplicate_collection_rejected():
    bc = chain()
    bc.create_collection("x", {"a"})
    with pytest.raises(IntegrityError):
        bc.create_collection("x", {"a"})


def test_submit_private_unknown_collection():
    with pytest.raises(IntegrityError):
        chain().submit_private("nope", {})


# -- SharPer sharding ---------------------------------------------------------------

def test_intra_shard_transactions_commit():
    ledger = ShardedLedger(["s1", "s2"])
    for i in range(4):
        ledger.submit_intra("s1", {"i": i})
    ledger.run()
    assert ledger.committed_counts()["s1"] == 4


def test_cross_shard_commits_in_all_involved():
    ledger = ShardedLedger(["s1", "s2", "s3"])
    record = ledger.submit_cross(["s1", "s3"], {"xfer": 1})
    ledger.run()
    assert record.committed_at is not None
    assert record.latency > 0


def test_cross_shard_needs_two_shards():
    ledger = ShardedLedger(["s1", "s2"])
    with pytest.raises(ProtocolError):
        ledger.submit_cross(["s1"], {})


def test_unknown_shard_rejected():
    ledger = ShardedLedger(["s1"])
    with pytest.raises(ProtocolError):
        ledger.submit_intra("sX", {})


def test_cross_shard_latency_exceeds_intra_on_average():
    ledger = ShardedLedger(["s1", "s2"])
    intra = [
        ledger.shards["s1"].submit({"tx_id": f"i{i}", "payload": {}})
        for i in range(8)
    ]
    cross = [ledger.submit_cross(["s1", "s2"], {"x": i}) for i in range(8)]
    ledger.run()
    mean_intra = sum(r.latency for r in intra) / len(intra)
    mean_cross = sum(r.latency for r in cross) / len(cross)
    # A cross-shard commit waits for the slowest involved shard, so its
    # mean latency cannot beat the intra-shard mean.
    assert mean_cross >= mean_intra * 0.95


def test_throughput_counts_cross_once():
    ledger = ShardedLedger(["s1", "s2"])
    ledger.submit_intra("s1", {"i": 0})
    ledger.submit_cross(["s1", "s2"], {"x": 1})
    ledger.run()
    duration = ledger.network.clock.now()
    assert abs(ledger.throughput() - 2 / duration) < 1e-6


# -- Qanaat ---------------------------------------------------------------------------

def qanaat():
    network = QanaatNetwork({"A", "B", "C"})
    network.form_collaboration("AB", {"A", "B"})
    return network


def test_members_read_outsiders_cannot():
    network = qanaat()
    network.append("A", "AB", {"doc": 1})
    assert network.read("B", "AB") == [{"doc": 1}]
    with pytest.raises(PrivacyError):
        network.read("C", "AB")
    with pytest.raises(PrivacyError):
        network.append("C", "AB", {"doc": 2})


def test_visible_collaborations():
    network = qanaat()
    network.form_collaboration("BC", {"B", "C"})
    assert network.visible_collaborations("B") == ["AB", "BC"]
    assert network.visible_collaborations("A") == ["AB"]


def test_anchor_trail_grows_with_appends():
    network = qanaat()
    network.append("A", "AB", {"doc": 1})
    network.append("B", "AB", {"doc": 2})
    assert len(network.anchor_chain) == 2
    anchor = network.latest_anchor("AB")
    assert anchor.size == 2


def test_verification_against_anchor():
    network = qanaat()
    network.append("A", "AB", {"doc": 1})
    assert network.verify_collaboration("A", "AB")


def test_rollback_detected():
    network = qanaat()
    network.append("A", "AB", {"doc": 1})
    network.append("A", "AB", {"doc": 2})
    network.collaboration("AB").ledger.tamper_rewrite(0, {"doc": "evil"})
    assert not network.verify_collaboration("A", "AB")


def test_outsider_cannot_even_verify():
    network = qanaat()
    with pytest.raises(PrivacyError):
        network.verify_collaboration("C", "AB")


def test_unknown_enterprise_rejected():
    network = qanaat()
    with pytest.raises(IntegrityError):
        network.form_collaboration("AX", {"A", "X"})
