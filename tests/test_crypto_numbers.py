"""Number theory: primality, inverses, CRT."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.randomness import deterministic_rng
from repro.crypto.numbers import (
    crt_pair,
    generate_prime,
    generate_safe_prime,
    is_probable_prime,
    lcm,
    modinv,
    next_prime_above,
    random_coprime,
)

KNOWN_PRIMES = [2, 3, 5, 7, 11, 101, 7919, 104729, 2**31 - 1]
KNOWN_COMPOSITES = [0, 1, 4, 100, 561, 1105, 6601, 2**32 - 1, 7919 * 104729]
# 561, 1105, 6601 are Carmichael numbers — Fermat liars, Miller-Rabin must
# still reject them.


@pytest.mark.parametrize("p", KNOWN_PRIMES)
def test_known_primes_accepted(p):
    assert is_probable_prime(p)


@pytest.mark.parametrize("n", KNOWN_COMPOSITES)
def test_known_composites_rejected(n):
    assert not is_probable_prime(n)


def test_generate_prime_has_exact_bit_length():
    rng = deterministic_rng(1)
    for bits in (16, 32, 64):
        p = generate_prime(bits, rng=rng)
        assert p.bit_length() == bits
        assert is_probable_prime(p)


def test_generate_prime_rejects_tiny_request():
    with pytest.raises(ValueError):
        generate_prime(2)


def test_safe_prime_structure():
    p, q = generate_safe_prime(48, rng=deterministic_rng(2))
    assert p == 2 * q + 1
    assert is_probable_prime(p) and is_probable_prime(q)


@given(st.integers(min_value=2, max_value=10**6))
@settings(max_examples=100)
def test_modinv_roundtrip(a):
    m = 1_000_003  # prime modulus
    inv = modinv(a % m or 1, m)
    assert (a % m or 1) * inv % m == 1


def test_modinv_noninvertible_raises():
    with pytest.raises(ValueError):
        modinv(6, 9)


@given(st.integers(min_value=0, max_value=10**9))
@settings(max_examples=50)
def test_crt_reconstructs(x):
    p, q = 10_007, 10_009
    value = x % (p * q)
    assert crt_pair(value % p, p, value % q, q) == value


def test_lcm():
    assert lcm(4, 6) == 12
    assert lcm(7, 13) == 91


def test_random_coprime_is_coprime():
    import math

    rng = deterministic_rng(3)
    n = 15_015  # 3*5*7*11*13
    for _ in range(20):
        r = random_coprime(n, rng=rng)
        assert math.gcd(r, n) == 1


def test_next_prime_above():
    assert next_prime_above(10) == 11
    assert next_prime_above(13) == 17
    assert is_probable_prime(next_prime_above(10**6))
