"""Number theory: primality, inverses, CRT."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.randomness import deterministic_rng
from repro.crypto.numbers import (
    crt_pair,
    generate_prime,
    generate_safe_prime,
    is_probable_prime,
    jacobi,
    lcm,
    modinv,
    next_prime_above,
    random_coprime,
)

KNOWN_PRIMES = [2, 3, 5, 7, 11, 101, 7919, 104729, 2**31 - 1]
KNOWN_COMPOSITES = [0, 1, 4, 100, 561, 1105, 6601, 2**32 - 1, 7919 * 104729]
# 561, 1105, 6601 are Carmichael numbers — Fermat liars, Miller-Rabin must
# still reject them.


@pytest.mark.parametrize("p", KNOWN_PRIMES)
def test_known_primes_accepted(p):
    assert is_probable_prime(p)


@pytest.mark.parametrize("n", KNOWN_COMPOSITES)
def test_known_composites_rejected(n):
    assert not is_probable_prime(n)


def test_generate_prime_has_exact_bit_length():
    rng = deterministic_rng(1)
    for bits in (16, 32, 64):
        p = generate_prime(bits, rng=rng)
        assert p.bit_length() == bits
        assert is_probable_prime(p)


def test_generate_prime_rejects_tiny_request():
    with pytest.raises(ValueError):
        generate_prime(2)


def test_safe_prime_structure():
    p, q = generate_safe_prime(48, rng=deterministic_rng(2))
    assert p == 2 * q + 1
    assert is_probable_prime(p) and is_probable_prime(q)


@given(st.integers(min_value=2, max_value=10**6))
@settings(max_examples=100)
def test_modinv_roundtrip(a):
    m = 1_000_003  # prime modulus
    inv = modinv(a % m or 1, m)
    assert (a % m or 1) * inv % m == 1


def test_modinv_noninvertible_raises():
    with pytest.raises(ValueError):
        modinv(6, 9)


@given(st.integers(min_value=0, max_value=10**9))
@settings(max_examples=50)
def test_crt_reconstructs(x):
    p, q = 10_007, 10_009
    value = x % (p * q)
    assert crt_pair(value % p, p, value % q, q) == value


def test_lcm():
    assert lcm(4, 6) == 12
    assert lcm(7, 13) == 91


def test_random_coprime_is_coprime():
    import math

    rng = deterministic_rng(3)
    n = 15_015  # 3*5*7*11*13
    for _ in range(20):
        r = random_coprime(n, rng=rng)
        assert math.gcd(r, n) == 1


def test_next_prime_above():
    assert next_prime_above(10) == 11
    assert next_prime_above(13) == 17
    assert is_probable_prime(next_prime_above(10**6))


# -- Jacobi symbol -----------------------------------------------------------
#
# jacobi() is the fast path behind safe-prime subgroup membership
# (Legendre symbol via quadratic reciprocity), so it must agree with
# Euler's criterion on every input class: residues, non-residues,
# multiples of the modulus, zero, and negatives.

@pytest.mark.parametrize("n", [0, -7, 2, 100])
def test_jacobi_rejects_bad_modulus(n):
    with pytest.raises(ValueError):
        jacobi(3, n)


@pytest.mark.parametrize("p", [3, 7, 11, 101, 7919, 104729])
def test_jacobi_matches_euler_criterion_on_primes(p):
    for a in range(0, min(p, 120)):
        euler = pow(a, (p - 1) // 2, p)
        expected = 0 if euler == 0 else (1 if euler == 1 else -1)
        assert jacobi(a, p) == expected


def test_jacobi_zero_and_multiples_of_modulus():
    assert jacobi(0, 7) == 0
    assert jacobi(21, 7) == 0
    assert jacobi(0, 1) == 1  # (0/1) = 1 by convention


def test_jacobi_negative_inputs_reduce_mod_n():
    # a is reduced mod n first, so (a/n) == (a + k*n / n).
    for a in range(-20, 0):
        assert jacobi(a, 11) == jacobi(a % 11, 11)


def test_jacobi_even_numerator():
    # (2/p) = 1 iff p ≡ ±1 (mod 8).
    assert jacobi(2, 7) == 1
    assert jacobi(2, 3) == -1
    assert jacobi(2, 5) == -1
    assert jacobi(2, 17) == 1


def test_jacobi_composite_modulus_is_multiplicative():
    # (a/15) = (a/3)(a/5); 2 is a non-residue mod both -> product 1
    # even though 2 is not a square mod 15 (the classic Jacobi trap).
    assert jacobi(2, 15) == jacobi(2, 3) * jacobi(2, 5) == 1


@given(st.integers(min_value=-10**6, max_value=10**6))
@settings(max_examples=80)
def test_jacobi_of_square_is_one_or_zero(a):
    p = 104729
    value = jacobi(a * a, p)
    assert value == (0 if a % p == 0 else 1)
