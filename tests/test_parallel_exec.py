"""The multicore execution layer (``repro.parallel``).

Two families of guarantees:

* executor mechanics — chunk splitting, order preservation, the inline
  small-batch fast path, and env-driven selection;
* equivalence — decisions, applied rows, ledger roots and proofs are
  byte-identical whichever executor runs the crypto, for the plaintext
  and Paillier engines, batch signature verification, Merkle extension,
  and the Paillier batch primitives.

Also covers the satellite edge cases: a tampered signature inside an
otherwise-valid batch, empty batches, batches of one, non-coprime
Paillier ciphertexts, and the per-stage ``throughput_report`` rates.
"""

import os
import pickle

import pytest

from repro.common.errors import PReVerError
from repro.common.metrics import MetricsRegistry
from repro.common.randomness import deterministic_rng
from repro.core.contexts import single_private_database
from repro.core.framework import PReVer
from repro.crypto.group import SchnorrGroup
from repro.crypto.merkle import MerkleTree, verify_inclusion
from repro.crypto.paillier import (
    PaillierCiphertext,
    PaillierError,
    PaillierPublicKey,
    decrypt_batch,
    encrypt_batch,
    fold_ciphertexts,
)
from repro.crypto.signatures import SchnorrSignature, SchnorrSigner, verify_batch
from repro.database.engine import Database
from repro.database.schema import ColumnType, TableSchema
from repro.ledger.central import CentralLedger
from repro.model.constraints import (
    Constraint,
    ConstraintKind,
    upper_bound_regulation,
)
from repro.model.participants import DataProducer
from repro.model.update import Update, UpdateOperation
from repro.obs.tracing import Tracer
from repro.parallel import (
    SERIAL_EXECUTOR,
    ParallelExecutor,
    SerialExecutor,
    executor_from_env,
    make_executor,
    resolve_executor,
    split_chunks,
)


def _double(chunk):
    return [x * 2 for x in chunk]


def _pids(chunk):
    return [os.getpid()] * len(chunk)


def small_parallel(workers=2, tracer=None):
    """A pool executor forced past the inline threshold for tiny
    test batches."""
    return ParallelExecutor(workers=workers, min_items=2, tracer=tracer)


# -- executor mechanics -----------------------------------------------------

def test_split_chunks_shapes_and_order():
    assert split_chunks([], 4) == []
    assert split_chunks([1, 2, 3], 1) == [[1, 2, 3]]
    assert split_chunks([1, 2], 5) == [[1], [2]]  # never empty chunks
    chunks = split_chunks(list(range(10)), 3)
    assert [len(c) for c in chunks] == [4, 3, 3]  # near-even
    assert [x for c in chunks for x in c] == list(range(10))


def test_serial_executor_runs_inline():
    assert SerialExecutor().map_chunks(_double, [1, 2, 3]) == [2, 4, 6]
    assert SerialExecutor().map_chunks(_double, []) == []
    assert SERIAL_EXECUTOR.parallel is False


def test_parallel_executor_preserves_input_order():
    out = small_parallel().map_chunks(_double, list(range(100)))
    assert out == [x * 2 for x in range(100)]


def test_parallel_executor_inlines_small_batches():
    executor = ParallelExecutor(workers=2, min_items=8)
    pids = executor.map_chunks(_pids, list(range(4)))
    assert pids == [os.getpid()] * 4  # below min_items: no pool traffic


def test_parallel_executor_rejects_bad_worker_count():
    with pytest.raises(PReVerError):
        ParallelExecutor(workers=0)
    with pytest.raises(PReVerError):
        make_executor("thread")


def test_env_driven_selection():
    assert isinstance(executor_from_env({}), SerialExecutor)
    assert isinstance(executor_from_env({"REPRO_EXECUTOR": "serial"}),
                      SerialExecutor)
    chosen = executor_from_env(
        {"REPRO_EXECUTOR": "process", "REPRO_WORKERS": "2"}
    )
    assert isinstance(chosen, ParallelExecutor)
    assert chosen.workers == 2


def test_resolve_executor_prefers_explicit(monkeypatch):
    monkeypatch.setenv("REPRO_EXECUTOR", "process")
    monkeypatch.setenv("REPRO_WORKERS", "2")
    explicit = SerialExecutor()
    assert resolve_executor(explicit) is explicit
    assert isinstance(resolve_executor(None), ParallelExecutor)
    monkeypatch.setenv("REPRO_EXECUTOR", "serial")
    assert isinstance(resolve_executor(None), SerialExecutor)


def test_parallel_map_records_spans():
    tracer = Tracer()
    executor = small_parallel(tracer=tracer)
    executor.map_chunks(_double, list(range(10)), label="unit.double")
    maps = tracer.spans_named("parallel.map")
    assert len(maps) == 1
    span = maps[0]
    assert span.attributes["label"] == "unit.double"
    assert span.attributes["workers"] == 2
    assert span.attributes["items"] == 10
    chunks = tracer.spans_named("parallel.chunk")
    assert len(chunks) == span.attributes["chunks"]
    assert all(c.parent_id == span.span_id for c in chunks)


# -- pipeline equivalence ---------------------------------------------------

def make_db(name="db"):
    db = Database(name)
    db.create_table(
        TableSchema.build(
            "events",
            [("id", ColumnType.INT), ("who", ColumnType.TEXT),
             ("amount", ColumnType.INT)],
            primary_key=["id"],
        )
    )
    return db


def cap_constraint(bound=55):
    # Pinned constraint_id so failed_constraint compares equal across
    # independently built frameworks.
    template = upper_bound_regulation("cap", "events", "amount", bound, ["who"])
    return Constraint(
        name="cap", kind=ConstraintKind.INTERNAL,
        aggregate=template.aggregate, comparison=template.comparison,
        bound=bound, tables=("events",), constraint_id="cst-cap",
    )


def make_update(i, who="w", amount=10, update_id=None):
    return Update(
        table="events", operation=UpdateOperation.INSERT,
        payload={"id": i, "who": who, "amount": amount},
        update_id=update_id or f"upd-{i:05d}",
    )


def mixed_stream():
    # alice exceeds the 55 cap on her 6th update of 10; bob stays under.
    return [make_update(i, who=("alice" if i % 2 == 0 else "bob"),
                        update_id=f"x-{i:03d}")
            for i in range(14)]


def assert_frameworks_equivalent(serial_fw, parallel_fw,
                                 serial_results, parallel_results):
    assert len(serial_results) == len(parallel_results)
    for s, p in zip(serial_results, parallel_results):
        assert s.accepted == p.accepted
        assert s.applied == p.applied
        assert s.ledger_sequence == p.ledger_sequence
        assert s.outcome.failed_constraint == p.outcome.failed_constraint
        assert s.update.status == p.update.status
    serial_rows = sorted(
        r["id"] for r in serial_fw.databases[0].table("events").scan())
    parallel_rows = sorted(
        r["id"] for r in parallel_fw.databases[0].table("events").scan())
    assert serial_rows == parallel_rows
    serial_digest = serial_fw.ledger.digest()
    parallel_digest = parallel_fw.ledger.digest()
    assert serial_digest.size == parallel_digest.size
    assert serial_digest.root == parallel_digest.root
    for sequence in range(len(parallel_fw.ledger)):
        proof = parallel_fw.ledger.prove_inclusion(sequence)
        entry = parallel_fw.ledger.entry(sequence)
        assert CentralLedger.verify_entry(serial_digest, entry, proof)


@pytest.mark.parametrize("engine", ["plaintext", "paillier"])
def test_submit_many_parallel_matches_serial(engine):
    def build(executor):
        return single_private_database(
            make_db("mgr"), [cap_constraint()], engine=engine,
            executor=executor)

    serial_fw = build(SerialExecutor())
    parallel_fw = build(small_parallel())
    serial_results = serial_fw.submit_many(mixed_stream())
    parallel_results = parallel_fw.submit_many(mixed_stream())
    assert any(not r.accepted for r in serial_results)
    assert any(r.applied for r in serial_results)
    assert_frameworks_equivalent(
        serial_fw, parallel_fw, serial_results, parallel_results)


def test_signed_batch_parallel_matches_serial():
    producer = DataProducer("alice")

    def stream():
        good = make_update(1, update_id="s-1").sign_with(producer)
        tampered = make_update(2, update_id="s-2").sign_with(producer)
        tampered.payload["amount"] = 999
        unsigned = make_update(3, update_id="s-3")
        more = [make_update(i, update_id=f"s-{i}").sign_with(producer)
                for i in range(4, 10)]
        return [good, tampered, unsigned, *more]

    serial_fw = PReVer([make_db()], require_signed_updates=True,
                       executor=SerialExecutor())
    parallel_fw = PReVer([make_db()], require_signed_updates=True,
                         executor=small_parallel())
    serial_results = serial_fw.submit_many(stream())
    parallel_results = parallel_fw.submit_many(stream())
    assert parallel_results[1].outcome.failed_constraint == "bad signature"
    assert parallel_results[2].outcome.failed_constraint == "unsigned update"
    assert_frameworks_equivalent(
        serial_fw, parallel_fw, serial_results, parallel_results)


def test_per_batch_executor_override():
    serial_fw = single_private_database(
        make_db("a"), [cap_constraint()], engine="paillier")
    override_fw = single_private_database(
        make_db("b"), [cap_constraint()], engine="paillier")
    serial_results = serial_fw.submit_many(mixed_stream())
    override_results = override_fw.submit_many(
        mixed_stream(), executor=small_parallel())
    assert_frameworks_equivalent(
        serial_fw, override_fw, serial_results, override_results)


def test_framework_traces_parallel_spans():
    tracer = Tracer()
    framework = single_private_database(
        make_db("mgr"), [cap_constraint()], engine="paillier",
        tracer=tracer, executor=small_parallel())
    framework.submit_many(mixed_stream())
    maps = tracer.spans_named("parallel.map")
    assert maps, "parallel paillier preparation should record map spans"
    assert all(span.attributes["workers"] == 2 for span in maps)
    assert "paillier.encrypt" in {span.attributes["label"] for span in maps}
    assert tracer.spans_named("parallel.chunk")


# -- Merkle chunked extension -----------------------------------------------

def test_merkle_parallel_extend_bit_identical():
    datas = [f"leaf-{i}".encode() for i in range(23)]
    serial_tree, parallel_tree = MerkleTree(), MerkleTree()
    for data in datas:
        serial_tree.append(data)
    parallel_tree.extend(datas, executor=small_parallel())
    assert serial_tree.root() == parallel_tree.root()
    for index, data in enumerate(datas):
        proof = parallel_tree.inclusion_proof(index)
        assert verify_inclusion(serial_tree.root(), data, proof)
    # Growing the tree again keeps histories aligned.
    serial_tree.extend([b"more-1", b"more-2"])
    parallel_tree.extend([b"more-1", b"more-2"], executor=small_parallel())
    assert serial_tree.root() == parallel_tree.root()


# -- batch signature verification -------------------------------------------

def test_verify_batch_empty_and_single():
    assert verify_batch([]) == []
    signer = SchnorrSigner()
    signature = signer.sign(b"solo")
    assert verify_batch([(signer.public_key, b"solo", signature)]) == [True]
    assert verify_batch([(signer.public_key, b"other", signature)]) == [False]


@pytest.mark.parametrize("executor", [None, "process"])
def test_verify_batch_pinpoints_tampered_signature(executor):
    executor = small_parallel() if executor == "process" else executor
    signers = [SchnorrSigner() for _ in range(6)]
    items = []
    for i, signer in enumerate(signers):
        message = f"msg-{i}".encode()
        items.append((signer.public_key, message, signer.sign(message)))
    pk, message, signature = items[3]
    items[3] = (pk, message, SchnorrSignature(
        commitment=signature.commitment,
        response=(signature.response + 1) % signers[3].group.q,
    ))
    verdicts = verify_batch(items, executor=executor)
    assert verdicts == [True, True, True, False, True, True]


def test_verify_batch_rejects_non_member_commitment():
    group = SchnorrGroup.default()
    signer = SchnorrSigner(group)
    good = signer.sign(b"ok")
    # p - 1 ≡ -1 is a quadratic non-residue mod a safe prime, so it
    # fails subgroup membership before the combined equation runs.
    bad = SchnorrSignature(commitment=group.p - 1, response=good.response)
    verdicts = verify_batch([
        (signer.public_key, b"ok", good),
        (signer.public_key, b"ok", bad),
    ])
    assert verdicts == [True, False]


def test_verify_batch_matches_per_signature_for_all_bad():
    signers = [SchnorrSigner() for _ in range(3)]
    items = [(s.public_key, b"m", s.sign(b"other")) for s in signers]
    assert verify_batch(items) == [False, False, False]


# -- Paillier batch primitives ----------------------------------------------

def test_encrypt_batch_parallel_equals_serial_with_seeded_rng(paillier):
    plaintexts = [3, 1, 4, 1, 5, 9, 2, 6]
    serial = encrypt_batch(paillier.public_key, plaintexts,
                           rng=deterministic_rng(11))
    parallel = encrypt_batch(paillier.public_key, plaintexts,
                             executor=small_parallel(),
                             rng=deterministic_rng(11))
    assert [c.value for c in serial] == [c.value for c in parallel]


def test_decrypt_and_fold_batch_parallel_equals_serial(paillier):
    plaintexts = [7, -2, 40, 0, -13, 5]
    ciphertexts = encrypt_batch(paillier.public_key, plaintexts, signed=True)
    serial = decrypt_batch(paillier.private_key, ciphertexts, signed=True)
    parallel = decrypt_batch(paillier.private_key, ciphertexts, signed=True,
                             executor=small_parallel())
    assert serial == parallel == plaintexts
    folded_serial = fold_ciphertexts(ciphertexts)
    folded_parallel = fold_ciphertexts(ciphertexts, executor=small_parallel())
    assert folded_serial.value == folded_parallel.value
    assert paillier.private_key.decrypt_signed(folded_parallel) == sum(plaintexts)


def test_weighted_fold_encrypts_weighted_sum(paillier):
    plaintexts = [7, -2, 40, 0, -13, 5]
    weights = [1, 3, 0, 2, 5, 1]
    ciphertexts = encrypt_batch(paillier.public_key, plaintexts, signed=True)
    expected = sum(w * m for w, m in zip(weights, plaintexts))
    serial = fold_ciphertexts(ciphertexts, weights=weights)
    parallel = fold_ciphertexts(ciphertexts, weights=weights,
                                executor=small_parallel())
    assert serial.value == parallel.value
    assert paillier.private_key.decrypt_signed(serial) == expected
    # The multi-exp fold equals the naive scalar-multiply-then-fold.
    naive = fold_ciphertexts([c * w for c, w in zip(ciphertexts, weights)])
    assert paillier.private_key.decrypt_signed(naive) == expected
    with pytest.raises(PaillierError):
        fold_ciphertexts(ciphertexts, weights=weights[:-1])


def test_fold_empty_batch(paillier):
    identity = fold_ciphertexts([], public_key=paillier.public_key)
    assert identity.value == 1
    assert paillier.private_key.decrypt(identity) == 0
    with pytest.raises(PaillierError):
        fold_ciphertexts([])


def test_encrypt_batch_signed_range_check(paillier):
    with pytest.raises(PaillierError):
        encrypt_batch(paillier.public_key, [paillier.public_key.n // 2],
                      signed=True)


@pytest.mark.parametrize("executor", [None, "process"])
def test_non_coprime_ciphertext_rejected(paillier, executor):
    executor = small_parallel() if executor == "process" else executor
    # gcd(p, n) = p: the L-function's division by n is undefined, and a
    # well-formed encryptor can never emit such a value.
    bogus = PaillierCiphertext(public_key=paillier.public_key,
                               value=paillier.private_key.p)
    good = paillier.public_key.encrypt(5)
    with pytest.raises(PaillierError, match="coprime"):
        decrypt_batch(paillier.private_key, [good, bogus], executor=executor)
    with pytest.raises(PaillierError, match="coprime"):
        paillier.private_key.decrypt(bogus)
    with pytest.raises(PaillierError, match="coprime"):
        paillier.private_key.decrypt_classic(bogus)


def test_public_key_pickles_without_randomness_pool(paillier):
    key = PaillierPublicKey(paillier.public_key.n)
    key.precompute_randomness(4, rng=deterministic_rng(3))
    assert key.randomness_pool_size == 4
    clone = pickle.loads(pickle.dumps(key))
    assert clone.n == key.n
    assert clone.randomness_pool_size == 0  # pools are per-process
    private_clone = pickle.loads(pickle.dumps(paillier.private_key))
    assert private_clone.decrypt(clone.encrypt(42)) == 42


def test_randomness_pool_drains_fifo_deterministically(paillier):
    first = PaillierPublicKey(paillier.public_key.n)
    second = PaillierPublicKey(paillier.public_key.n)
    first.precompute_randomness(6, rng=deterministic_rng(9))
    second.precompute_randomness(6, rng=deterministic_rng(9))
    serial = [first.encrypt(m).value for m in range(6)]
    batched = [c.value for c in encrypt_batch(second, list(range(6)))]
    assert serial == batched  # same seed, same drain order
    assert first.randomness_pool_size == 0
    assert second.randomness_pool_size == 0


# -- metrics ----------------------------------------------------------------

def test_throughput_report_rates_use_stage_wall_time():
    registry = MetricsRegistry()
    for _ in range(4):
        registry.counter("pipeline.updates").add()
        registry.timer("pipeline.stage.verify").record(0.5)
        registry.timer("pipeline.stage.apply").record(0.25)
    report = registry.throughput_report()
    verify = report["stages"]["verify"]
    apply_ = report["stages"]["apply"]
    # Per-stage rate comes from that stage's own wall time, not the
    # summed elapsed across stages (which would report 4/3 for both).
    assert verify["per_sec"] == pytest.approx(4 / 2.0)
    assert apply_["per_sec"] == pytest.approx(4 / 1.0)
    assert report["total_seconds"] == pytest.approx(3.0)
    assert report["updates_per_sec"] == pytest.approx(4 / 3.0)
    # A stage that never fired reports a zero rate, not a crash.
    registry.timer("pipeline.stage.idle")
    assert registry.throughput_report()["stages"]["idle"]["per_sec"] == 0.0
