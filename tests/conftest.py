"""Shared fixtures.

Expensive key material (Paillier, RSA) is generated once per session;
the schemes are key-agnostic so sharing keys across tests loses no
coverage and keeps the suite fast.
"""

import pytest

from repro.crypto.commitments import PedersenCommitter
from repro.crypto.group import SchnorrGroup
from repro.crypto.paillier import generate_paillier_keypair
from repro.crypto.rsa import generate_rsa_keypair


@pytest.fixture(scope="session")
def group():
    return SchnorrGroup.default()


@pytest.fixture(scope="session")
def paillier():
    return generate_paillier_keypair(256)


@pytest.fixture(scope="session")
def rsa_keys():
    return generate_rsa_keypair(512)


@pytest.fixture(scope="session")
def committer(group):
    return PedersenCommitter(group)


@pytest.fixture()
def work_schema():
    from repro.database.schema import ColumnType, TableSchema

    return TableSchema.build(
        "tasks",
        [
            ("task_id", ColumnType.TEXT),
            ("worker", ColumnType.TEXT),
            ("hours", ColumnType.INT),
            ("completed_at", ColumnType.FLOAT),
        ],
        primary_key=["task_id"],
        indexes=["worker"],
        nullable=["completed_at"],
    )


def make_work_db(name, schema):
    from repro.database.engine import Database

    database = Database(name)
    database.create_table(schema)
    return database


@pytest.fixture()
def work_db(work_schema):
    return make_work_db("manager", work_schema)
