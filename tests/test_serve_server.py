"""Serving-tier tests: sessions, admission, batching, drain, equality.

The load-bearing guarantee pinned here is **transport transparency**:
the served decision stream and the anchored ledger root are identical
to calling ``submit_many`` in-process on the same total update order —
for the plaintext and Paillier engines and for a sharded target.  The
rest is the failure surface: unauthenticated submits refused, bad auth
forfeits the connection, queue-full answers RETRY (never drops),
shutdown drains every admitted batch.
"""

import asyncio
import contextlib
import dataclasses

import pytest

from repro.core.framework import PReVer
from repro.core.sharded import ShardedPReVer, ShardSpec
from repro.database.engine import Database
from repro.database.schema import ColumnType, TableSchema
from repro.model.constraints import (
    Constraint,
    ConstraintKind,
    upper_bound_regulation,
)
from repro.model.participants import DataProducer
from repro.model.update import Update, UpdateOperation
from repro.serve import protocol
from repro.serve.client import (
    ConnectionClosed,
    RequestError,
    ServeClient,
    ServerBusy,
)
from repro.serve.server import PReVerServer

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")

ALICE = DataProducer("alice")
BOB = DataProducer("bob")


def make_db(name="manager"):
    schema = TableSchema.build(
        "emissions",
        [("id", ColumnType.INT), ("org", ColumnType.TEXT),
         ("co2", ColumnType.INT)],
        primary_key=["id"],
    )
    database = Database(name)
    database.create_table(schema)
    return database


def build_framework(engine="plaintext"):
    from repro.core.contexts import single_private_database

    template = upper_bound_regulation("cap", "emissions", "co2", bound=100,
                                      match_columns=["org"])
    # Pin the constraint id: the replay framework must anchor the same
    # identifiers or the root-equality asserts would compare apples to
    # freshly-numbered oranges.
    cap = dataclasses.replace(template, constraint_id="cst-serve-cap")
    return single_private_database(make_db(), [cap], engine=engine)


def make_updates(producer, ids, co2=20, org=None):
    return [
        Update(table="emissions", operation=UpdateOperation.INSERT,
               payload={"id": i, "org": org or producer.name, "co2": co2},
               update_id=f"upd-{producer.name}-{i:04d}").sign_with(producer)
        for i in ids
    ]


@contextlib.asynccontextmanager
async def serving(target, **config):
    server = PReVerServer(target, **config)
    await server.start()
    try:
        yield server
    finally:
        await server.stop()


def replay_in_process(served_results, updates_by_id, engine="plaintext"):
    """Re-run the served stream in-process, in served ledger order."""
    ordered = sorted(served_results, key=lambda r: r.ledger_sequence)
    replay = build_framework(engine=engine)
    results = replay.submit_many([updates_by_id[r.update_id]
                                  for r in ordered])
    return replay, ordered, results


# -- transport transparency --------------------------------------------------


def test_served_equals_in_process_plaintext_concurrent_clients():
    async def scenario():
        framework = build_framework()
        updates_by_id = {}
        async with serving(framework, batch_window=0.02,
                           producers={"alice": ALICE.public_key,
                                      "bob": BOB.public_key}) as server:
            host, port = server.address

            async def one_client(producer, offset):
                updates = make_updates(producer, range(offset, offset + 6),
                                       co2=30)
                updates_by_id.update({u.update_id: u for u in updates})
                async with await ServeClient.connect(
                        host, port, producer=producer) as client:
                    first = await client.submit(updates[0])
                    rest = await client.submit_many(updates[1:])
                    return [first] + rest

            served = await asyncio.gather(one_client(ALICE, 0),
                                          one_client(BOB, 100))
        return framework, [r for batch in served for r in batch], updates_by_id

    framework, served, updates_by_id = asyncio.run(scenario())
    assert len(served) == 12
    # Both accepts and cap rejections must appear (the 100-cap trips
    # after three 30s per org), each with a ledger sequence.
    assert any(r.applied for r in served) and any(
        not r.applied for r in served)
    replay, ordered, replayed = replay_in_process(served, updates_by_id)
    for served_result, replay_result in zip(ordered, replayed):
        assert served_result.update_id == replay_result.update.update_id
        assert served_result.accepted == replay_result.outcome.accepted
        assert served_result.applied == replay_result.applied
        assert (served_result.failed_constraint
                == replay_result.outcome.failed_constraint)
    assert framework.ledger.digest().root == replay.ledger.digest().root


def test_served_equals_in_process_paillier():
    async def scenario():
        framework = build_framework(engine="paillier")
        updates = make_updates(ALICE, range(4), co2=40)
        async with serving(framework, batch_window=0.01,
                           producers={"alice": ALICE.public_key}) as server:
            host, port = server.address
            async with await ServeClient.connect(
                    host, port, producer=ALICE) as client:
                served = await client.submit_many(updates)
        return framework, served, {u.update_id: u for u in updates}

    framework, served, updates_by_id = asyncio.run(scenario())
    assert [r.engine for r in served] == ["paillier"] * 4
    replay, _, replayed = replay_in_process(served, updates_by_id,
                                            engine="paillier")
    assert [r.applied for r in replayed] == [r.applied for r in served]
    assert framework.ledger.digest().root == replay.ledger.digest().root


def test_sharded_target_served_decisions_match():
    def build_sharded():
        def build_shard():
            framework = PReVer([make_db("shard-db")])
            template = upper_bound_regulation("cap", "emissions", "co2",
                                              bound=100,
                                              match_columns=["org"])
            framework.register_constraint(Constraint(
                name="cap", kind=ConstraintKind.INTERNAL,
                aggregate=template.aggregate,
                comparison=template.comparison, bound=100,
                tables=("emissions",), constraint_id="cst-serve-cap",
            ))
            return framework

        return ShardedPReVer([ShardSpec("s0", ("emissions",), build_shard)])

    async def scenario():
        sharded = build_sharded()
        updates = make_updates(ALICE, range(5), co2=30)
        async with serving(sharded, batch_window=0.01,
                           producers={"alice": ALICE.public_key}) as server:
            host, port = server.address
            async with await ServeClient.connect(
                    host, port, producer=ALICE) as client:
                served = await client.submit_many(updates)
        sharded.close()
        return served, updates

    served, updates = asyncio.run(scenario())
    assert [r.shard for r in served] == ["s0"] * 5
    replay = build_sharded()
    replayed = replay.submit_many(
        [Update(table=u.table, operation=u.operation, payload=u.payload,
                producers=list(u.producers), update_id=u.update_id,
                signature=u.signature,
                signer_public_key=u.signer_public_key)
         for u in updates])
    replay.close()
    assert [r.applied for r in replayed] == [r.applied for r in served]


# -- sessions and auth -------------------------------------------------------


def test_unauthenticated_submit_is_refused():
    async def scenario():
        framework = build_framework()
        async with serving(framework) as server:
            host, port = server.address
            async with await ServeClient.connect(host, port) as client:
                update = make_updates(ALICE, [1])[0]
                with pytest.raises(RequestError) as excinfo:
                    await client.submit(update)
        return excinfo.value

    error = asyncio.run(scenario())
    assert error.symbol == "AUTH_REQUIRED"
    assert error.code == protocol.ERROR_CODES["AUTH_REQUIRED"]


def test_bad_auth_signature_forfeits_the_connection():
    async def scenario():
        framework = build_framework()
        async with serving(framework) as server:
            host, port = server.address
            client = await ServeClient.connect(host, port)
            try:
                await client.request("HELLO", {
                    "producer": "alice",
                    "public_key": ALICE.public_key,
                    "version": protocol.PROTOCOL_VERSION,
                })
                with pytest.raises(RequestError) as excinfo:
                    await client.request("AUTH", {
                        "signature": {"R": 12345, "s": 67890}})
                assert excinfo.value.symbol == "AUTH_FAILED"
                # The server drops the link after a failed handshake.
                with pytest.raises((ConnectionClosed, RequestError)):
                    await client.request("HELLO", {
                        "producer": "alice",
                        "public_key": ALICE.public_key,
                        "version": protocol.PROTOCOL_VERSION,
                    })
            finally:
                await client.close()
        return framework

    framework = asyncio.run(scenario())
    assert framework.metrics.counter_value("server.auth_failures") == 1


def test_producer_allowlist_pins_keys():
    async def scenario():
        framework = build_framework()
        async with serving(framework,
                           producers={"alice": ALICE.public_key}) as server:
            host, port = server.address
            # Right name, wrong key: refused at HELLO.
            client = await ServeClient.connect(host, port)
            try:
                with pytest.raises(RequestError) as excinfo:
                    await client.authenticate(BOB.__class__("alice"))
                assert excinfo.value.symbol == "AUTH_FAILED"
            finally:
                await client.close()
            # Registered producer: session opens and submits work.
            async with await ServeClient.connect(
                    host, port, producer=ALICE) as client:
                assert client.session_id
                result = await client.submit(make_updates(ALICE, [9])[0])
                assert result.applied

    asyncio.run(scenario())


def test_hello_version_mismatch():
    async def scenario():
        framework = build_framework()
        async with serving(framework) as server:
            host, port = server.address
            async with await ServeClient.connect(host, port) as client:
                with pytest.raises(RequestError) as excinfo:
                    await client.request("HELLO", {
                        "producer": "alice",
                        "public_key": ALICE.public_key,
                        "version": 99,
                    })
        return excinfo.value

    assert asyncio.run(scenario()).symbol == "UNSUPPORTED_VERSION"


# -- framing and envelope failures against a live server ---------------------


def test_garbage_frame_drops_the_connection():
    async def scenario():
        framework = build_framework()
        async with serving(framework) as server:
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            # Declared length far beyond the cap: rejected from the
            # header alone, one ERROR frame, then EOF.
            writer.write(protocol.FRAME_HEADER.pack(1 << 30, 0x01))
            await writer.drain()
            message = await protocol.read_frame(reader)
            eof = await reader.read(1)
            writer.close()
            return framework, message, eof

    framework, message, eof = asyncio.run(scenario())
    assert message["type"] == "ERROR"
    assert message["body"]["error"] == "FRAME_TOO_LARGE"
    assert eof == b""  # the server hung up
    assert framework.metrics.counter_value("server.frame_errors") == 1


def test_envelope_version_mismatch_drops_the_connection():
    async def scenario():
        framework = build_framework()
        async with serving(framework) as server:
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(protocol.encode_frame(
                {"v": 2, "type": "HELLO", "id": 1, "body": {}}))
            await writer.drain()
            message = await protocol.read_frame(reader)
            eof = await reader.read(1)
            writer.close()
            return message, eof

    message, eof = asyncio.run(scenario())
    assert message["type"] == "ERROR"
    assert message["body"]["error"] == "UNSUPPORTED_VERSION"
    assert eof == b""


def test_response_type_from_client_is_refused():
    async def scenario():
        framework = build_framework()
        async with serving(framework) as server:
            host, port = server.address
            async with await ServeClient.connect(host, port) as client:
                with pytest.raises(RequestError) as excinfo:
                    await client.request("RESULT", {})
        return excinfo.value

    assert asyncio.run(scenario()).symbol == "BAD_MESSAGE"


# -- admission control and backpressure --------------------------------------


def test_queue_full_answers_retry_then_recovers():
    async def scenario():
        framework = build_framework()
        updates = make_updates(ALICE, range(3), co2=10)
        async with serving(framework, queue_limit=2, batch_window=0.25,
                           retry_after_ms=10,
                           producers={"alice": ALICE.public_key}) as server:
            host, port = server.address
            async with await ServeClient.connect(
                    host, port, producer=ALICE) as client:
                # Pipeline two submits into the open batch window...
                first = asyncio.ensure_future(client.submit(updates[0]))
                second = asyncio.ensure_future(client.submit(updates[1]))
                await asyncio.sleep(0.05)
                # ...so the third exceeds queue_limit=2 and gets RETRY.
                with pytest.raises(ServerBusy) as excinfo:
                    await client.submit(updates[2], retries=0)
                assert excinfo.value.retry_after_ms == 10
                # With retries the same submit eventually lands.
                third = await client.submit(updates[2], retries=50)
                results = [await first, await second, third]
        return framework, results

    framework, results = asyncio.run(scenario())
    assert all(r.applied for r in results)
    assert framework.metrics.counter_value("server.retries") >= 1
    # RETRY is backpressure, not loss: all three updates are anchored.
    assert framework.ledger.digest().size >= 3


def test_oversize_request_is_never_admittable():
    async def scenario():
        framework = build_framework()
        updates = make_updates(ALICE, range(4), co2=10)
        async with serving(framework, queue_limit=3,
                           producers={"alice": ALICE.public_key}) as server:
            host, port = server.address
            async with await ServeClient.connect(
                    host, port, producer=ALICE) as client:
                with pytest.raises(ServerBusy):
                    await client.submit_many(updates, retries=1)

    asyncio.run(scenario())


def test_draining_server_refuses_new_submits():
    async def scenario():
        framework = build_framework()
        async with serving(framework,
                           producers={"alice": ALICE.public_key}) as server:
            host, port = server.address
            async with await ServeClient.connect(
                    host, port, producer=ALICE) as client:
                server._draining = True
                with pytest.raises(RequestError) as excinfo:
                    await client.submit(make_updates(ALICE, [1])[0])
                server._draining = False
        return excinfo.value

    assert asyncio.run(scenario()).symbol == "SHUTTING_DOWN"


def test_shutdown_drains_in_flight_batches():
    async def scenario():
        framework = build_framework()
        updates = make_updates(ALICE, range(3), co2=10)
        server = PReVerServer(framework, batch_window=0.3,
                              producers={"alice": ALICE.public_key})
        await server.start()
        host, port = server.address
        client = await ServeClient.connect(host, port, producer=ALICE)
        tasks = [asyncio.ensure_future(client.submit(u)) for u in updates]
        await asyncio.sleep(0.05)  # all three admitted, window still open
        await server.stop()  # must complete the batch, not abort it
        results = [await task for task in tasks]
        await client.close()
        return framework, results

    framework, results = asyncio.run(scenario())
    assert [r.applied for r in results] == [True] * 3
    assert framework.ledger.digest().size == 3


# -- observability -----------------------------------------------------------


def test_server_metrics_land_on_the_framework_registry():
    async def scenario():
        framework = build_framework()
        async with serving(framework, batch_window=0.01,
                           producers={"alice": ALICE.public_key}) as server:
            host, port = server.address
            async with await ServeClient.connect(
                    host, port, producer=ALICE) as client:
                await client.submit_many(make_updates(ALICE, range(3)))
        return framework

    framework = asyncio.run(scenario())
    metrics = framework.metrics
    assert metrics.counter_value("server.connections") == 1
    assert metrics.counter_value("server.sessions") == 1
    assert metrics.counter_total("server.updates") == 3
    assert metrics.counter_value("server.batches") >= 1
    assert metrics.counter_value("server.producer.alice.updates") == 1
    assert metrics.counter_total("server.producer.alice.updates") == 3
    assert metrics.timer_total("server.batch") > 0
    # The ops endpoint reads the same registry, so the serving tier is
    # already on /metrics with zero extra wiring.
    assert metrics.gauge_value("server.queue_depth") == 0
