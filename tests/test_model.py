"""The PReVer model: participants, updates, constraints, policy, threat."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ConstraintViolation
from repro.database.engine import Database
from repro.database.expr import col, lit, update_field
from repro.database.schema import ColumnType, TableSchema
from repro.model.constraints import (
    AggregateSpec,
    Comparison,
    Constraint,
    ConstraintKind,
    WindowSpec,
    lower_bound_regulation,
    upper_bound_regulation,
)
from repro.model.participants import (
    Authority,
    DataManager,
    DataOwner,
    DataProducer,
    Role,
)
from repro.model.policy import (
    CONFERENCE_POLICY,
    CROWDWORKING_POLICY,
    SUPPLY_CHAIN_POLICY,
    SUSTAINABILITY_POLICY,
    PrivacyPolicy,
    Visibility,
)
from repro.model.threat import (
    AdversaryClass,
    CollusionStructure,
    ThreatModel,
    ThreatModelMismatch,
    require_tolerates,
)
from repro.model.update import Update, UpdateOperation, UpdateStatus


def tasks_db(name="db"):
    db = Database(name)
    db.create_table(
        TableSchema.build(
            "tasks",
            [("task_id", ColumnType.TEXT), ("worker", ColumnType.TEXT),
             ("hours", ColumnType.INT), ("at", ColumnType.FLOAT)],
            primary_key=["task_id"],
            nullable=["at"],
        )
    )
    return db


def insert_task(db, task_id, worker, hours, at=0.0):
    db.insert("tasks", {"task_id": task_id, "worker": worker,
                        "hours": hours, "at": at})


def make_update(worker, hours, at=0.0):
    return Update(
        table="tasks",
        operation=UpdateOperation.INSERT,
        payload={"task_id": f"t-{worker}-{hours}-{at}", "worker": worker,
                 "hours": hours, "at": at},
    )


# -- participants --------------------------------------------------------------

def test_roles():
    producer = DataProducer("p")
    assert producer.has_role(Role.DATA_PRODUCER)
    owner = DataOwner("o", manages_own_data=True)
    assert owner.has_role(Role.DATA_MANAGER)
    manager = DataManager("m")
    assert not manager.trusted
    authority = Authority("a")
    assert authority.external


def test_participant_signing():
    producer = DataProducer("p")
    sig = producer.sign(b"hello")
    assert producer.verifier().verify(b"hello", sig)


def test_participant_without_keys():
    producer = DataProducer("p", with_keys=False)
    with pytest.raises(ValueError):
        producer.sign(b"x")


def test_manager_observation_transcript():
    manager = DataManager("m")
    manager.observe("ciphertext-1")
    assert manager.observed == ["ciphertext-1"]


# -- updates ------------------------------------------------------------------

def test_update_lifecycle():
    update = make_update("w", 5)
    assert update.status is UpdateStatus.PENDING
    update.mark_verified()
    assert update.status is UpdateStatus.VERIFIED
    update.mark_applied()
    assert update.status is UpdateStatus.APPLIED


def test_update_rejection_reason():
    update = make_update("w", 5)
    update.mark_rejected("cap exceeded")
    assert update.status is UpdateStatus.REJECTED
    assert update.rejection_reason == "cap exceeded"


def test_update_signature_covers_body():
    producer = DataProducer("alice")
    update = make_update("w", 5).sign_with(producer)
    assert producer.verifier().verify(update.body_bytes(), update.signature)
    assert "alice" in update.producers
    update.payload["hours"] = 99  # tamper
    assert not producer.verifier().verify(update.body_bytes(), update.signature)


# -- constraints ----------------------------------------------------------------

def test_constraint_needs_exactly_one_shape():
    with pytest.raises(ValueError):
        Constraint(name="bad", kind=ConstraintKind.INTERNAL)
    with pytest.raises(ValueError):
        Constraint(
            name="bad", kind=ConstraintKind.INTERNAL,
            predicate=lit(True),
            aggregate=AggregateSpec(func="COUNT", column=None),
            comparison=Comparison.LE, bound=1,
        )


def test_aggregate_needs_bound():
    with pytest.raises(ValueError):
        Constraint(
            name="bad", kind=ConstraintKind.INTERNAL,
            aggregate=AggregateSpec(func="COUNT", column=None),
        )


def test_predicate_constraint_check():
    db = tasks_db()
    constraint = Constraint(
        name="hours-positive", kind=ConstraintKind.INTERNAL,
        predicate=update_field("hours") > lit(0),
    )
    assert constraint.check([db], make_update("w", 5), now=0.0)
    assert not constraint.check([db], make_update("w", 0), now=0.0)


def test_upper_bound_regulation_single_db():
    db = tasks_db()
    insert_task(db, "t1", "w", 30)
    regulation = upper_bound_regulation("cap", "tasks", "hours", 40, ["worker"])
    assert regulation.check([db], make_update("w", 10), now=0.0)
    assert not regulation.check([db], make_update("w", 11), now=0.0)
    assert regulation.check([db], make_update("other", 40), now=0.0)


def test_regulation_spans_multiple_databases():
    db1, db2 = tasks_db("uber"), tasks_db("lyft")
    insert_task(db1, "t1", "w", 20)
    insert_task(db2, "t2", "w", 15)
    regulation = upper_bound_regulation("cap", "tasks", "hours", 40, ["worker"])
    assert regulation.check([db1, db2], make_update("w", 5), now=0.0)
    assert not regulation.check([db1, db2], make_update("w", 6), now=0.0)


def test_lower_bound_regulation():
    db = tasks_db()
    insert_task(db, "t1", "w", 5)
    regulation = lower_bound_regulation("min", "tasks", "hours", 10, ["worker"])
    assert regulation.check([db], make_update("w", 5), now=0.0)
    assert not regulation.check([db], make_update("w", 4), now=0.0)


def test_sliding_window():
    db = tasks_db()
    insert_task(db, "old", "w", 40, at=0.0)
    insert_task(db, "recent", "w", 10, at=90.0)
    window = WindowSpec(time_column="at", length=50.0)
    regulation = upper_bound_regulation(
        "cap", "tasks", "hours", 40, ["worker"], window=window
    )
    # At t=100 only the recent task (10h) counts: 10+25 <= 40 passes.
    assert regulation.check([db], make_update("w", 25, at=100.0), now=100.0)
    # 10+31 > 40 fails.
    assert not regulation.check([db], make_update("w", 31, at=100.0), now=100.0)


def test_count_aggregate():
    db = tasks_db()
    insert_task(db, "t1", "w", 1)
    insert_task(db, "t2", "w", 1)
    constraint = Constraint(
        name="max-3-tasks", kind=ConstraintKind.REGULATION,
        aggregate=AggregateSpec(func="COUNT", column=None,
                                match_columns=("worker",)),
        comparison=Comparison.LE, bound=3,
    )
    assert constraint.check([db], make_update("w", 1), now=0.0)
    insert_task(db, "t3", "w", 1)
    assert not constraint.check([db], make_update("w", 1), now=0.0)


def test_aggregate_filter():
    db = tasks_db()
    insert_task(db, "t1", "w", 10)
    insert_task(db, "t2", "w", 30)
    constraint = Constraint(
        name="cap-big-tasks", kind=ConstraintKind.INTERNAL,
        aggregate=AggregateSpec(
            func="SUM", column="hours",
            filter=col("hours") >= lit(20),
            match_columns=("worker",),
        ),
        comparison=Comparison.LE, bound=60,
    )
    # Only the 30h task counts; update contributes 25 -> 55 <= 60.
    assert constraint.check([db], make_update("w", 25), now=0.0)


def test_enforce_raises():
    db = tasks_db()
    insert_task(db, "t1", "w", 40)
    regulation = upper_bound_regulation("cap", "tasks", "hours", 40, ["worker"])
    with pytest.raises(ConstraintViolation) as err:
        regulation.enforce([db], make_update("w", 1), now=0.0)
    assert err.value.constraint_id == regulation.constraint_id


def test_is_linear():
    agg = upper_bound_regulation("cap", "t", "h", 1, ["w"])
    assert agg.is_linear()
    pred = Constraint(
        name="p", kind=ConstraintKind.INTERNAL,
        predicate=(col("a") + update_field("b")) <= lit(3),
    )
    assert pred.is_linear()
    nonlinear = Constraint(
        name="n", kind=ConstraintKind.INTERNAL,
        predicate=(col("a") * col("b")) <= lit(3),
    )
    assert not nonlinear.is_linear()


@given(existing=st.integers(0, 60), incoming=st.integers(0, 60))
@settings(max_examples=40)
def test_upper_bound_reference_semantics(existing, incoming):
    db = tasks_db()
    if existing:
        insert_task(db, "t1", "w", existing)
    regulation = upper_bound_regulation("cap", "tasks", "hours", 40, ["worker"])
    assert regulation.check([db], make_update("w", incoming), now=0.0) == (
        existing + incoming <= 40
    )


# -- policy & threat --------------------------------------------------------------

def test_policy_matrix_matches_figure_1():
    assert SUSTAINABILITY_POLICY.constraints is Visibility.PUBLIC
    assert not SUSTAINABILITY_POLICY.manager_may_see_data
    assert CONFERENCE_POLICY.manager_may_see_data
    assert not CONFERENCE_POLICY.manager_may_see_updates
    assert CROWDWORKING_POLICY.manager_may_see_constraints
    assert not SUPPLY_CHAIN_POLICY.manager_may_see_constraints


def test_policy_describe():
    assert "data=public" in CONFERENCE_POLICY.describe()


def test_adversary_ordering():
    assert AdversaryClass.HONEST.at_most(AdversaryClass.MALICIOUS)
    assert not AdversaryClass.MALICIOUS.at_most(AdversaryClass.COVERT)


def test_collusion_structure():
    collusion = CollusionStructure([["a", "b"], ["c", "d"]])
    assert collusion.may_collude("a", "b")
    assert not collusion.may_collude("a", "c")
    assert CollusionStructure.none().is_collusion_free
    views = collusion.coalition_views({"a": [1], "b": [2], "c": [3]})
    assert sorted(views[frozenset({"a", "b"})]) == [1, 2]


def test_threat_model_presets():
    hbc = ThreatModel.honest_but_curious_manager()
    assert hbc.adversary_of(Role.DATA_MANAGER) is AdversaryClass.HONEST_BUT_CURIOUS
    byz = ThreatModel.byzantine_managers()
    assert byz.adversary_of(Role.DATA_MANAGER) is AdversaryClass.MALICIOUS
    covert = ThreatModel.covert_colluding_platforms(["uber", "lyft"])
    assert not covert.collusion.is_collusion_free


def test_require_tolerates_fail_closed():
    model = ThreatModel.byzantine_managers()
    with pytest.raises(ThreatModelMismatch):
        require_tolerates(
            "weak-engine",
            {Role.DATA_MANAGER: AdversaryClass.HONEST_BUT_CURIOUS},
            model,
        )
    # strong engine passes
    require_tolerates(
        "strong-engine",
        {Role.DATA_MANAGER: AdversaryClass.MALICIOUS},
        model,
    )


def test_require_tolerates_collusion():
    model = ThreatModel.covert_colluding_platforms(["a", "b"])
    with pytest.raises(ThreatModelMismatch):
        require_tolerates(
            "engine",
            {role: AdversaryClass.MALICIOUS for role in Role},
            model,
            tolerates_collusion=False,
        )
    require_tolerates(
        "engine",
        {role: AdversaryClass.MALICIOUS for role in Role},
        model,
        tolerates_collusion=True,
    )
