"""YCSB, TPC-C, and arrival-stream generators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.database.engine import Database
from repro.workloads.streams import (
    bursty_arrivals,
    interarrival_histogram,
    poisson_arrivals,
)
from repro.workloads.tpcc import TPCCWorkload
from repro.workloads.ycsb import (
    WORKLOAD_MIXES,
    YCSBOperation,
    YCSBWorkload,
    ZipfianSampler,
)


# -- YCSB -----------------------------------------------------------------------

def test_all_workload_mixes_sum_to_one():
    for name, mix in WORKLOAD_MIXES.items():
        assert abs(sum(mix.values()) - 1.0) < 1e-9, name


@pytest.mark.parametrize("letter", list(WORKLOAD_MIXES))
def test_operation_mix_approximately_matches(letter):
    workload = YCSBWorkload(letter, record_count=100, operation_count=4000)
    ops = list(workload.operations())
    assert len(ops) == 4000
    observed = {}
    for op in ops:
        observed[op.op.value] = observed.get(op.op.value, 0) + 1
    for kind, fraction in WORKLOAD_MIXES[letter].items():
        share = observed.get(kind, 0) / 4000
        assert abs(share - fraction) < 0.05, (letter, kind, share)


def test_zipfian_skews_toward_low_keys():
    sampler = ZipfianSampler(1000, theta=0.99, seed=1)
    samples = [sampler.sample() for _ in range(5000)]
    top10 = sum(1 for s in samples if s < 10)
    assert top10 > 1000  # >20% of mass on the hottest 1% of keys
    assert all(0 <= s < 1100 for s in samples)


def test_ycsb_inserts_use_fresh_keys():
    workload = YCSBWorkload("D", record_count=50, operation_count=2000)
    inserts = [op for op in workload.operations()
               if op.op is YCSBOperation.INSERT]
    keys = [op.key for op in inserts]
    assert len(set(keys)) == len(keys)
    assert all(k >= 50 for k in keys)


def test_ycsb_scan_lengths_bounded():
    workload = YCSBWorkload("E", record_count=50, operation_count=500,
                            max_scan_length=10)
    for op in workload.operations():
        if op.op is YCSBOperation.SCAN:
            assert 1 <= op.scan_length <= 10


def test_ycsb_deterministic_under_seed():
    ops1 = [(o.op, o.key) for o in YCSBWorkload("A", 50, 100, seed=3).operations()]
    ops2 = [(o.op, o.key) for o in YCSBWorkload("A", 50, 100, seed=3).operations()]
    assert ops1 == ops2


def test_ycsb_unknown_workload():
    with pytest.raises(ValueError):
        YCSBWorkload("Z")


# -- TPC-C ----------------------------------------------------------------------------

@pytest.fixture()
def tpcc_db():
    workload = TPCCWorkload(warehouses=2, districts_per_warehouse=2,
                            customers_per_district=5, items=50)
    database = Database("tpcc")
    workload.load(database)
    return workload, database


def test_tpcc_load_populates_tables(tpcc_db):
    workload, database = tpcc_db
    assert len(database.table("warehouse")) == 2
    assert len(database.table("district")) == 4
    assert len(database.table("customer")) == 20
    assert len(database.table("stock")) == 100
    assert TPCCWorkload.check_consistency(database)


def test_tpcc_mix_maintains_consistency(tpcc_db):
    workload, database = tpcc_db
    stats = workload.run_mix(database, transactions=400)
    assert stats.new_orders + stats.payments + stats.rollbacks >= 400 - 1
    assert TPCCWorkload.check_consistency(database)
    assert stats.new_orders > 0 and stats.payments > 0


def test_tpcc_stock_never_negative_even_with_rollbacks(tpcc_db):
    workload, database = tpcc_db
    workload.run_mix(database, transactions=600)
    assert all(s["s_quantity"] >= 0 for s in database.table("stock").rows())


def test_tpcc_orders_get_sequential_ids(tpcc_db):
    workload, database = tpcc_db
    workload.run_mix(database, transactions=200)
    for (w, d), _ in workload_districts(database):
        ids = sorted(
            o["o_id"] for o in database.table("orders").rows()
            if o["o_w_id"] == w and o["o_d_id"] == d
        )
        assert ids == list(range(1, len(ids) + 1))


def workload_districts(database):
    for district in database.table("district").rows():
        yield (district["d_w_id"], district["d_id"]), district


# -- streams ------------------------------------------------------------------------------

def test_poisson_rate_approximation():
    arrivals = poisson_arrivals(rate=20.0, duration=50.0, seed=2)
    assert 800 < len(arrivals) < 1200
    assert all(0 <= t < 50.0 for t in arrivals)
    assert arrivals == sorted(arrivals)


def test_poisson_zero_rate():
    assert poisson_arrivals(0, 10.0) == []


def test_bursty_has_silent_gaps():
    arrivals = bursty_arrivals(burst_rate=50.0, burst_length=1.0,
                               silence_length=5.0, duration=20.0)
    gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
    assert max(gaps) > 4.0  # the silence shows up


def test_interarrival_histogram():
    histogram = interarrival_histogram([0.0, 1.0, 2.0, 3.0], bins=4)
    assert sum(histogram) == 3
    assert interarrival_histogram([1.0], bins=3) == [0, 0, 0]
