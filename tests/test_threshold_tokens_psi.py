"""Future-work features: distributed token issuance and PSI-based
JOIN-shaped regulations."""

import pytest

from repro.core.separ import SeparSystem
from repro.privacy.psi import (
    PSICoordinator,
    PSIParty,
    check_max_membership,
    check_no_overlap,
)
from repro.privacy.threshold_tokens import DistributedTokenAuthority
from repro.privacy.tokens import SpendRegistry, TokenError, TokenWallet
from repro.common.errors import PReVerError, ProtocolError


@pytest.fixture(scope="module")
def authority():
    return DistributedTokenAuthority(signers=3, budget_per_period=10,
                                     rsa_bits=512)


# -- distributed issuance ------------------------------------------------------

def test_combined_signature_verifies_under_public_key(authority):
    wallet = TokenWallet("alice", authority.public_key)
    assert wallet.request_tokens(authority, period=1, count=3) == 3
    token = wallet.take(1, 1)[0]
    assert authority.public_key.verify(token.message(), token.signature)


def test_tokens_spend_normally(authority):
    wallet = TokenWallet("bob", authority.public_key)
    wallet.request_tokens(authority, period=2, count=2)
    registry = SpendRegistry(authority.public_key)
    for token in wallet.take(2, 2):
        registry.spend(token, "uber")
    assert registry.total_spent(2) == 2


def test_budget_enforced_by_every_signer(authority):
    wallet = TokenWallet("carol", authority.public_key)
    wallet.request_tokens(authority, period=3, count=10)
    with pytest.raises(TokenError):
        wallet.request_tokens(authority, period=3, count=1)
    for signer in authority.signers:
        assert signer.issued_count("carol", 3) == 10


def test_single_compromised_signer_cannot_forge(authority):
    """A partial signature is not a valid signature."""
    from repro.crypto.blind import BlindClient

    client = BlindClient(authority.public_key)
    blinded = client.blind(b"forged-token")
    partial = authority.signers[0].partial_sign("mallory", 4, blinded)
    # Unblinding a single partial fails verification inside unblind().
    from repro.crypto.blind import BlindSignatureError

    with pytest.raises(BlindSignatureError):
        client.unblind(partial)


def test_offline_signer_halts_issuance_n_of_n(authority_=None):
    authority = DistributedTokenAuthority(signers=3, budget_per_period=5,
                                          rsa_bits=512)
    authority.take_offline(1)
    wallet = TokenWallet("dave", authority.public_key)
    with pytest.raises(TokenError):
        wallet.request_tokens(authority, period=1, count=1)


def test_compromise_view_never_contains_full_key(authority):
    view = authority.compromise_view([0, 1])
    assert view["shares_held"] == 2
    assert view["shares_needed"] == 3


def test_mid_batch_budget_refusal_is_atomic():
    authority = DistributedTokenAuthority(signers=2, budget_per_period=3,
                                          rsa_bits=512)
    wallet = TokenWallet("erin", authority.public_key)
    wallet.request_tokens(authority, period=1, count=2)
    with pytest.raises(TokenError):
        wallet.request_tokens(authority, period=1, count=2)  # 2+2 > 3
    # The failed batch consumed nothing.
    assert authority.issued_count("erin", 1) == 2
    wallet.request_tokens(authority, period=1, count=1)
    assert wallet.balance(1) == 3


def test_minimum_signers():
    with pytest.raises(PReVerError):
        DistributedTokenAuthority(signers=1, budget_per_period=1)


def test_separ_with_distributed_authority_end_to_end():
    system = SeparSystem(["uber", "lyft"], weekly_hour_cap=10,
                         distributed_authority=3)
    system.register_worker("w")
    assert system.complete_task("w", "uber", 6).accepted
    assert system.complete_task("w", "lyft", 4).accepted
    assert not system.complete_task("w", "uber", 1).accepted
    assert system.hours_worked("w") == 10
    # Taking one share-signer offline halts further issuance but does
    # not break already-issued tokens.
    system.authority.take_offline(0)
    system.advance_weeks(1)
    result = system.complete_task("w", "uber", 1)
    assert not result.accepted


# -- PSI -------------------------------------------------------------------------

def parties(*sets):
    return [PSIParty(f"p{i}", s) for i, s in enumerate(sets)]


def test_intersection_cardinality():
    coordinator = PSICoordinator(parties({"a", "b", "c"}, {"b", "c", "d"}))
    assert coordinator.intersection_cardinality() == 2


def test_three_way_intersection():
    coordinator = PSICoordinator(
        parties({"a", "b"}, {"b", "c"}, {"b", "d"})
    )
    assert coordinator.intersection_cardinality() == 1  # only "b"
    assert coordinator.max_multiplicity() == 3


def test_no_overlap_regulation():
    assert check_no_overlap(parties({"a"}, {"b"}, {"c"}))
    assert not check_no_overlap(parties({"a"}, {"a"}))


def test_max_membership_regulation():
    # A worker pseudonym registered on 3 platforms, limit 2 -> violation.
    platform_sets = [{"w1", "w2"}, {"w1"}, {"w1", "w3"}]
    assert not check_max_membership(parties(*platform_sets), limit=2)
    assert check_max_membership(parties(*platform_sets), limit=3)


def test_coordinator_view_is_masked():
    coordinator = PSICoordinator(
        parties({"secret-worker-anne"}, {"secret-worker-anne"})
    )
    counts = coordinator.membership_counts()
    for masked in counts:
        assert b"anne" not in masked
        assert len(masked) == 32  # PRF output, fixed length
    # Transcript records only (party, set size).
    assert coordinator.transcript == [("p0", 1), ("p1", 1)]


def test_masking_is_session_specific():
    """The same element masks differently across sessions (fresh keys),
    so coordinators cannot link elements between runs."""
    first = PSICoordinator(parties({"x"}, {"y"}))
    second = PSICoordinator(
        [PSIParty("q0", {"x"}), PSIParty("q1", {"y"})]
    )
    assert set(first.membership_counts()) != set(second.membership_counts())


def test_psi_needs_two_parties():
    with pytest.raises(ProtocolError):
        PSICoordinator(parties({"a"}))
