"""Model-based fuzzing of the Table against a reference dict.

Hypothesis drives random operation sequences through a Table and a
plain-dict reference model in lockstep; any divergence in contents,
indexes, or error behaviour is a substrate bug.  The relational layer
underpins every constraint decision, so it gets the heaviest fuzz.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.database.schema import ColumnType, TableSchema
from repro.database.table import DuplicateKeyError, MissingRowError, Table

KEYS = st.integers(0, 9)
VALUES = st.integers(0, 99)
CITIES = st.sampled_from(["paris", "rome", "oslo"])

operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), KEYS, CITIES, VALUES),
        st.tuples(st.just("upsert"), KEYS, CITIES, VALUES),
        st.tuples(st.just("update"), KEYS, CITIES, VALUES),
        st.tuples(st.just("delete"), KEYS, CITIES, VALUES),
        st.tuples(st.just("get"), KEYS, CITIES, VALUES),
    ),
    max_size=60,
)


def make_table():
    return Table(TableSchema.build(
        "people",
        [("id", ColumnType.INT), ("city", ColumnType.TEXT),
         ("v", ColumnType.INT)],
        primary_key=["id"],
        indexes=["city"],
    ))


@given(ops=operations)
@settings(max_examples=120, deadline=None)
def test_table_matches_reference_model(ops):
    table = make_table()
    reference = {}
    for op, key, city, value in ops:
        row = {"id": key, "city": city, "v": value}
        if op == "insert":
            if key in reference:
                with pytest.raises(DuplicateKeyError):
                    table.insert(row)
            else:
                table.insert(row)
                reference[key] = row
        elif op == "upsert":
            table.upsert(row)
            reference[key] = row
        elif op == "update":
            if key in reference:
                table.update_row((key,), {"city": city, "v": value})
                reference[key] = row
            else:
                with pytest.raises(MissingRowError):
                    table.update_row((key,), {"v": value})
        elif op == "delete":
            if key in reference:
                assert table.delete((key,)) == reference.pop(key)
            else:
                with pytest.raises(MissingRowError):
                    table.delete((key,))
        else:  # get
            assert table.get((key,)) == reference.get(key)

    # Final state equivalence.
    assert len(table) == len(reference)
    for key, row in reference.items():
        assert table.get((key,)) == row
    # Secondary index equivalence.
    for city in ("paris", "rome", "oslo"):
        expected = sorted(
            r["id"] for r in reference.values() if r["city"] == city
        )
        assert sorted(r["id"] for r in table.lookup("city", city)) == expected
    # Aggregates equivalence.
    assert table.aggregate(None, "COUNT") == len(reference)
    assert table.aggregate("v", "SUM") == sum(
        r["v"] for r in reference.values()
    )


@given(ops=operations)
@settings(max_examples=60, deadline=None)
def test_range_index_consistent_under_fuzz(ops):
    table = make_table()
    table.create_range_index("v")
    reference = {}
    for op, key, city, value in ops:
        row = {"id": key, "city": city, "v": value}
        if op in ("insert", "upsert") and (op == "upsert" or key not in reference):
            table.upsert(row)
            reference[key] = row
        elif op == "update" and key in reference:
            table.update_row((key,), {"v": value})
            reference[key]["v"] = value
        elif op == "delete" and key in reference:
            table.delete((key,))
            del reference[key]
    for low, high in [(0, 99), (10, 50), (99, 99), (60, 10)]:
        expected = sorted(
            (r["v"], r["id"]) for r in reference.values()
            if low <= r["v"] <= high
        )
        got = [(r["v"], r["id"]) for r in table.range_lookup("v", low, high)]
        assert got == expected
