"""Secret sharing: additive, Shamir, Beaver triples."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ProtocolError
from repro.common.randomness import deterministic_rng
from repro.crypto.sharing import (
    DEFAULT_FIELD_PRIME,
    BeaverTripleDealer,
    additive_reconstruct,
    additive_share,
    shamir_reconstruct,
    shamir_share,
    to_signed,
)

secrets_st = st.integers(min_value=0, max_value=2**64)


@given(secret=secrets_st, parties=st.integers(min_value=2, max_value=8))
@settings(max_examples=50)
def test_additive_roundtrip(secret, parties):
    shares = additive_share(secret, parties)
    assert additive_reconstruct(shares) == secret % DEFAULT_FIELD_PRIME


def test_additive_single_share_reveals_nothing_structurally():
    """Two different secrets produce share distributions over the same
    support; any n-1 shares of a fixed secret are uniform (we check
    the weaker, testable property: they differ across runs)."""
    first = additive_share(42, 3, rng=deterministic_rng(1))
    second = additive_share(42, 3, rng=deterministic_rng(2))
    assert first[:2] != second[:2]


def test_additive_needs_two_parties():
    with pytest.raises(ProtocolError):
        additive_share(1, 1)


@given(secret=secrets_st)
@settings(max_examples=25)
def test_shamir_any_threshold_subset_reconstructs(secret):
    shares = shamir_share(secret, threshold=3, parties=5)
    expected = secret % DEFAULT_FIELD_PRIME
    assert shamir_reconstruct(shares[:3]) == expected
    assert shamir_reconstruct(shares[2:5]) == expected
    assert shamir_reconstruct([shares[0], shares[2], shares[4]]) == expected


def test_shamir_below_threshold_gives_wrong_secret():
    secret = 123456
    shares = shamir_share(secret, threshold=3, parties=5,
                          rng=deterministic_rng(7))
    # Interpolating with too few points yields a different polynomial
    # value — not the secret (overwhelming probability).
    assert shamir_reconstruct(shares[:2]) != secret


def test_shamir_invalid_threshold():
    with pytest.raises(ProtocolError):
        shamir_share(1, threshold=6, parties=5)
    with pytest.raises(ProtocolError):
        shamir_share(1, threshold=0, parties=5)


def test_shamir_duplicate_shares_rejected():
    shares = shamir_share(9, threshold=2, parties=3)
    with pytest.raises(ProtocolError):
        shamir_reconstruct([shares[0], shares[0]])


def test_shamir_empty_rejected():
    with pytest.raises(ProtocolError):
        shamir_reconstruct([])


def test_to_signed():
    assert to_signed(5) == 5
    assert to_signed(DEFAULT_FIELD_PRIME - 3) == -3


def test_beaver_triples_multiply_correctly():
    dealer = BeaverTripleDealer(parties=4)
    triples = dealer.deal()
    a = additive_reconstruct([t.a for t in triples])
    b = additive_reconstruct([t.b for t in triples])
    c = additive_reconstruct([t.c for t in triples])
    assert c == a * b % DEFAULT_FIELD_PRIME
    assert dealer.triples_dealt == 1


def test_beaver_bit_shares():
    dealer = BeaverTripleDealer(parties=3)
    for _ in range(10):
        bit = additive_reconstruct(dealer.deal_bits())
        assert bit in (0, 1)


def test_dealer_needs_two_parties():
    with pytest.raises(ProtocolError):
        BeaverTripleDealer(parties=1)
