"""The opt-in sampling profiler and its pipeline integration.

Pinned here: wall/cpu sampling produce collapsed stacks with
``stage:`` prefixes, the env gate builds (or withholds) the profiler,
a profiled framework run attributes samples to pipeline stages, and —
the invariant everything else rides on — default-off runs keep the
golden ledger roots and WAL bytes byte-identical.
"""

import threading
import time

import pytest

from repro.common.errors import PReVerError
from repro.durability import Durability
from repro.obs.profiler import SamplingProfiler, profiler_from_env

from repro.core.framework import PReVer

from tests.test_pipeline_stages import (
    GOLDEN,
    build_plaintext,
    golden_stream,
    make_db,
    pinned_constraints,
    wal_sha256,
)


# -- construction & env gating ---------------------------------------------


def test_bad_mode_and_interval_rejected():
    with pytest.raises(PReVerError):
        SamplingProfiler(mode="flame")
    with pytest.raises(PReVerError):
        SamplingProfiler(interval=0.0)


def test_profiler_from_env_gates_on_variable():
    assert profiler_from_env({}) is None
    assert profiler_from_env({"REPRO_PROFILE": ""}) is None
    profiler = profiler_from_env({"REPRO_PROFILE": "wall"})
    assert profiler.mode == "wall" and profiler.interval == 0.005
    profiler = profiler_from_env(
        {"REPRO_PROFILE": "CPU", "REPRO_PROFILE_INTERVAL": "0.01"}
    )
    assert profiler.mode == "cpu" and profiler.interval == 0.01


def test_start_stop_idempotent():
    profiler = SamplingProfiler(interval=0.001)
    assert profiler.start() is profiler
    assert profiler.running
    profiler.start()  # no second thread
    profiler.stop()
    profiler.stop()
    assert not profiler.running


# -- sampling ---------------------------------------------------------------


def spin(profiler, seconds):
    deadline = time.perf_counter() + seconds
    with profiler.stage("verify"):
        while time.perf_counter() < deadline:
            sum(i * i for i in range(500))


def test_wall_mode_samples_staged_threads():
    profiler = SamplingProfiler(mode="wall", interval=0.001).start()
    worker = threading.Thread(target=spin, args=(profiler, 0.3))
    worker.start()
    worker.join()
    profiler.stop()
    assert profiler.sample_count > 0
    collapsed = profiler.collapsed()
    assert collapsed.endswith("\n")
    lines = collapsed.splitlines()
    assert all(line.rsplit(" ", 1)[1].isdigit() for line in lines)
    assert any(line.startswith("stage:verify;") for line in lines)
    report = profiler.stage_report()
    assert report["verify"]["samples_self"] > 0
    assert report["verify"]["cum_seconds"] == pytest.approx(
        report["verify"]["samples_cum"] * profiler.interval
    )


def test_wall_mode_ignores_unstaged_threads():
    profiler = SamplingProfiler(mode="wall", interval=0.001).start()
    time.sleep(0.05)  # nothing staged anywhere -> nothing sampled
    profiler.stop()
    assert profiler.sample_count == 0
    assert profiler.collapsed() == ""


def test_nested_stages_credit_self_and_cumulative():
    profiler = SamplingProfiler(mode="wall", interval=0.001).start()

    def nested():
        with profiler.stage("outer"):
            deadline = time.perf_counter() + 0.25
            with profiler.stage("inner"):
                while time.perf_counter() < deadline:
                    sum(i * i for i in range(500))

    worker = threading.Thread(target=nested)
    worker.start()
    worker.join()
    profiler.stop()
    report = profiler.stage_report()
    assert report["inner"]["samples_self"] > 0
    # Outer accrues cumulative but (almost) no self samples.
    assert report["outer"]["samples_cum"] >= report["inner"]["samples_cum"]
    assert any(key.startswith("stage:outer;stage:inner;")
               for key in profiler.collapsed().splitlines())


def test_cpu_mode_samples_main_thread():
    profiler = SamplingProfiler(mode="cpu", interval=0.001).start()
    spin(profiler, 0.3)
    profiler.stop()
    assert profiler.sample_count > 0
    assert any(line.startswith("stage:verify;")
               for line in profiler.collapsed().splitlines())


def test_write_collapsed(tmp_path):
    profiler = SamplingProfiler(mode="wall", interval=0.001).start()
    spin_thread = threading.Thread(target=spin, args=(profiler, 0.2))
    spin_thread.start()
    spin_thread.join()
    profiler.stop()
    path = tmp_path / "profile.collapsed"
    stacks = profiler.write_collapsed(str(path))
    assert stacks == len(path.read_text().splitlines())


# -- pipeline integration ---------------------------------------------------


def test_profiled_framework_attributes_stage_samples(tmp_path):
    profiler = SamplingProfiler(mode="wall", interval=0.0005)
    framework = build_plaintext(
        durability=Durability.wal(str(tmp_path))
    )
    # Attach post-hoc exactly as the ctor path does, with a fast
    # interval so the short golden stream still collects samples.
    framework.profiler = profiler
    profiler.start()
    for _ in range(40):
        framework.submit_many(golden_stream()[:8])
    framework.close()
    assert not profiler.running  # close() stops the sampler
    report = profiler.stage_report()
    # The exact stages sampled depend on timing; whatever was sampled
    # must be a known pipeline stage, and something must be sampled.
    known = {"authenticate", "route", "verify", "durability", "apply",
             "anchor", "anchor_batch", "auth_batch", "prepare_batch",
             "committer"}
    assert report, "profiled run collected no stage samples"
    assert set(report) <= known


def test_profiled_run_keeps_golden_roots(tmp_path):
    """Profiling must observe, never perturb: same decisions, roots,
    and WAL bytes as the unprofiled golden run."""
    profiler = SamplingProfiler(mode="wall", interval=0.001)
    framework = PReVer(
        [make_db()], durability=Durability.wal(str(tmp_path)),
        profiler=profiler,
    )
    for constraint in pinned_constraints():
        framework.register_constraint(constraint)
    assert framework.profiler is profiler and profiler.running
    stream = golden_stream()
    framework.submit_many(stream[:8])
    framework.submit_many(stream[8:])
    framework.close()
    golden = GOLDEN[("plaintext", "batched")]
    assert framework.ledger.digest().root.hex() == golden["root"]
    assert wal_sha256(str(tmp_path)) == golden["wal_sha256"]


def test_default_off_framework_has_no_profiler(monkeypatch):
    monkeypatch.delenv("REPRO_PROFILE", raising=False)
    framework = build_plaintext()
    assert framework.profiler is None
