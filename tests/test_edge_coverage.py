"""Edge paths not covered by the module-focused suites."""

import pytest

from repro.common.metrics import MetricsRegistry, Timer
from repro.consensus.base import ClusterStats, ConsensusResult, compute_stats
from repro.crypto.paillier import generate_paillier_keypair
from repro.database.encrypted import (
    ColumnEncryption,
    EncryptedStoreError,
    EncryptedTable,
    EncryptionScheme,
)
from repro.database.engine import Database
from repro.database.schema import ColumnType, TableSchema
from repro.net.simnet import Message, Node, SimNetwork
from repro.privacy.dp import DPIndex, PrivacyAccountant


# -- metrics/statistics edges -------------------------------------------------

def test_timer_empty_statistics():
    timer = Timer("t")
    assert timer.mean == 0.0
    assert timer.percentile(95) == 0.0
    assert timer.to_dict()["max"] == 0.0


def test_compute_stats_empty():
    stats = compute_stats([], sim_duration=0.0, messages=0)
    assert stats.decided == 0
    assert stats.throughput == 0.0
    assert stats.mean_latency == 0.0


def test_compute_stats_undecided_results():
    results = [ConsensusResult(value=1, sequence=-1, submitted_at=0.0)]
    stats = compute_stats(results, sim_duration=5.0, messages=3)
    assert stats.total == 1 and stats.decided == 0


def test_consensus_result_latency_none_until_decided():
    result = ConsensusResult(value=1, sequence=0, submitted_at=1.0)
    assert result.latency is None
    result.decided_at = 3.0
    assert result.latency == 2.0


# -- network edges --------------------------------------------------------------

class Sink(Node):
    def __init__(self, name):
        super().__init__(name)
        self.received = []

    def on_message(self, message):
        self.received.append(message)


def test_broadcast_include_self():
    net = SimNetwork()
    node = Sink("solo")
    net.add_node(node)
    node.broadcast("hello", include_self=True)
    net.run()
    assert len(node.received) == 1


def test_message_to_unknown_node_is_dropped():
    net = SimNetwork()
    node = Sink("a")
    net.add_node(node)
    node.send("ghost", "hello")
    net.run()  # no crash
    assert node.received == []


def test_partitioned_node_not_in_any_group_is_unrestricted():
    net = SimNetwork()
    a, b = Sink("a"), Sink("b")
    net.add_node(a)
    net.add_node(b)
    net.partition({"b"})  # "a" belongs to no group
    a.send("b", "x")
    net.run()
    assert len(b.received) == 1


def test_per_message_cost_defers_but_delivers_all():
    net = SimNetwork(per_message_cost=0.01)
    a, b = Sink("a"), Sink("b")
    net.add_node(a)
    net.add_node(b)
    for _ in range(5):
        a.send("b", "x")
    net.run()
    assert len(b.received) == 5
    # Serial processing: at least 4 * 10ms of busy time elapsed.
    assert net.clock.now() >= 0.04


# -- encrypted store edges ----------------------------------------------------------

def salary_schema():
    return TableSchema.build(
        "s", [("emp", ColumnType.TEXT), ("salary", ColumnType.INT)],
        primary_key=["emp"],
    )


def test_insert_encrypted_rejects_non_ciphertext_ahe_cell():
    enc = ColumnEncryption(
        schemes={"salary": EncryptionScheme.AHE}, master_key=b"k" * 32
    )
    table = EncryptedTable(salary_schema(), enc)
    with pytest.raises(EncryptedStoreError):
        table.insert_encrypted({"emp": "a", "salary": 12345})


def test_encrypted_sum_empty_table_is_none():
    enc = ColumnEncryption(
        schemes={"salary": EncryptionScheme.AHE}, master_key=b"k" * 32
    )
    table = EncryptedTable(salary_schema(), enc)
    assert table.encrypted_sum("salary") is None


def test_nullable_ahe_cells_skipped_in_sum():
    schema = TableSchema.build(
        "s", [("emp", ColumnType.TEXT), ("salary", ColumnType.INT)],
        primary_key=["emp"], nullable=["salary"],
    )
    enc = ColumnEncryption(
        schemes={"salary": EncryptionScheme.AHE}, master_key=b"k" * 32
    )
    table = EncryptedTable(schema, enc)
    table.insert_plain({"emp": "a", "salary": 10})
    table.insert_plain({"emp": "b", "salary": None})
    total = table.encrypted_sum("salary")
    assert enc.paillier.private_key.decrypt_signed(total) == 10


# -- DP edges ----------------------------------------------------------------------

def test_dp_index_noise_scale():
    index = DPIndex(0, 10, 2, PrivacyAccountant(5.0), 0.5)
    assert index.current_noise_scale() == 2.0


def test_dp_index_range_clamps_to_domain():
    accountant = PrivacyAccountant(5.0)
    index = DPIndex(0, 10, 2, accountant, 1.0)
    index.refresh([1.0, 9.0])
    estimate = index.estimate_range_count(-100, 100)
    assert estimate >= 0.0


# -- database engine edges ------------------------------------------------------------

def test_join_with_column_collision_prefixes():
    db = Database("d")
    db.create_table(TableSchema.build(
        "left", [("id", ColumnType.INT), ("name", ColumnType.TEXT)],
        primary_key=["id"],
    ))
    db.create_table(TableSchema.build(
        "right", [("id", ColumnType.INT), ("name", ColumnType.TEXT)],
        primary_key=["id"],
    ))
    db.insert("left", {"id": 1, "name": "left-name"})
    db.insert("right", {"id": 1, "name": "right-name"})
    joined = db.join("left", "right", "id", "id")
    assert joined[0]["name"] == "left-name"
    assert joined[0]["right.name"] == "right-name"


def test_group_by_avg_min_max():
    db = Database("d")
    db.create_table(TableSchema.build(
        "t", [("id", ColumnType.INT), ("g", ColumnType.TEXT),
              ("v", ColumnType.INT)],
        primary_key=["id"],
    ))
    for i, v in enumerate([10, 20, 30]):
        db.insert("t", {"id": i, "g": "a", "v": v})
    assert db.group_by("t", ["g"], "AVG", "v") == {("a",): 20}
    assert db.group_by("t", ["g"], "MIN", "v") == {("a",): 10}
    assert db.group_by("t", ["g"], "MAX", "v") == {("a",): 30}


def test_participant_verifier_without_keys_raises():
    from repro.model.participants import DataProducer

    producer = DataProducer("p", with_keys=False)
    with pytest.raises(ValueError):
        producer.verifier()


def test_paillier_zero_and_modulus_edge():
    keys = generate_paillier_keypair(128)
    assert keys.private_key.decrypt(keys.public_key.encrypt(0)) == 0
    top = keys.public_key.max_plaintext
    assert keys.private_key.decrypt(keys.public_key.encrypt(top)) == top


def test_select_with_predicate_and_projection():
    from repro.database.expr import col, lit

    db = Database("d")
    db.create_table(TableSchema.build(
        "t", [("id", ColumnType.INT), ("v", ColumnType.INT)],
        primary_key=["id"],
    ))
    for i in range(5):
        db.insert("t", {"id": i, "v": i * 10})
    rows = db.select("t", predicate=col("v") >= lit(20), columns=["id"])
    assert sorted(r["id"] for r in rows) == [2, 3, 4]
    assert all(set(r) == {"id"} for r in rows)


def test_transaction_log_last_and_payload_bytes():
    db = Database("d")
    db.create_table(TableSchema.build(
        "t", [("id", ColumnType.INT)], primary_key=["id"],
    ))
    assert db.log.last() is None
    db.insert("t", {"id": 1})
    record = db.log.last()
    assert record.sequence == 0
    assert b'"table":"t"' in record.payload_bytes()


def test_update_to_dict_shape():
    from repro.model.update import Update, UpdateOperation

    update = Update(table="t", operation=UpdateOperation.DELETE,
                    payload={}, key=(1,))
    as_dict = update.to_dict()
    assert as_dict["operation"] == "delete"
    assert as_dict["key"] == [1]
    assert as_dict["status"] == "pending"


def test_blockchain_process_skips_consensus_noops():
    """View-change no-ops in the ordered log must not become block
    transactions."""
    from repro.chain.blockchain import PermissionedBlockchain

    chain = PermissionedBlockchain(block_size=2)
    chain.submit_public({"v": 1})
    chain.cluster.run()
    # Inject a PBFT-style noop into every replica's decided log at the
    # next slot, as a view change would.
    for node in chain.cluster.nodes:
        node.log.decide(1, {"noop": 1, "view": 1})
    chain.submit_public({"v": 2})
    chain.process()
    block = chain.flush()
    all_txs = [
        tx for h in range(chain.height)
        for tx in chain.block(h).transactions
    ]
    assert len(all_txs) == 2
    assert all(tx.payload and "noop" not in tx.payload for tx in all_txs)
