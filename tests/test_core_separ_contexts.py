"""The context factories and the Separ instantiation."""

import pytest

from repro.common.errors import PReVerError
from repro.core.contexts import (
    federated_private_databases,
    public_database,
    single_private_database,
)
from repro.core.separ import SeparSystem, WEEK_SECONDS
from repro.database.engine import Database
from repro.database.expr import lit
from repro.database.schema import ColumnType, TableSchema
from repro.model.constraints import Constraint, ConstraintKind, upper_bound_regulation
from repro.model.update import Update, UpdateOperation


def reports_db(name="db"):
    db = Database(name)
    db.create_table(
        TableSchema.build(
            "reports",
            [("id", ColumnType.INT), ("org", ColumnType.TEXT),
             ("amount", ColumnType.INT)],
            primary_key=["id"],
        )
    )
    return db


def test_unknown_engines_rejected():
    with pytest.raises(PReVerError):
        single_private_database(reports_db(), [
            upper_bound_regulation("c", "reports", "amount", 1, ["org"])
        ], engine="magic")
    with pytest.raises(PReVerError):
        federated_private_databases(
            [reports_db("a"), reports_db("b")],
            upper_bound_regulation("c", "reports", "amount", 1, ["org"]),
            engine="magic",
        )


def test_federation_needs_two_databases():
    with pytest.raises(PReVerError):
        federated_private_databases(
            [reports_db()],
            upper_bound_regulation("c", "reports", "amount", 1, ["org"]),
        )


@pytest.mark.parametrize("engine", ["plaintext", "paillier", "zkp", "enclave"])
def test_rc1_contexts_enforce_identically(engine):
    db = reports_db()
    framework = single_private_database(
        db, [upper_bound_regulation("cap", "reports", "amount", 50, ["org"])],
        engine=engine,
    )
    decisions = []
    for i, amount in enumerate([30, 20, 1]):
        update = Update(table="reports", operation=UpdateOperation.INSERT,
                        payload={"id": i, "org": "x", "amount": amount})
        decisions.append(framework.submit(update).accepted)
    assert decisions == [True, True, False]


def test_rc1_policy_defaults_to_sustainability_matrix():
    framework = single_private_database(
        reports_db(),
        [upper_bound_regulation("cap", "reports", "amount", 50, ["org"])],
    )
    assert not framework.policy.manager_may_see_data
    assert framework.policy.manager_may_see_constraints


def test_rc3_context_applies_only_eligible_updates():
    db = Database("venue")
    db.create_table(TableSchema.build(
        "attendees", [("name", ColumnType.TEXT)], primary_key=["name"]))
    names = ["a", "b"]
    records = [b"ok", b"deny"]
    constraint = Constraint(name="c", kind=ConstraintKind.INTERNAL,
                            predicate=lit(True), tables=("attendees",))
    framework, verifier = public_database(
        db, constraint, records,
        record_index_of=lambda u: names.index(u.payload["name"]),
        predicate=lambda rec, u: rec.rstrip(b"\0") == b"ok",
        record_size=16,
    )
    ok = framework.submit(Update(table="attendees",
                                 operation=UpdateOperation.INSERT,
                                 payload={"name": "a"}))
    deny = framework.submit(Update(table="attendees",
                                   operation=UpdateOperation.INSERT,
                                   payload={"name": "b"}))
    assert ok.accepted and not deny.accepted
    assert ok.outcome.evidence["credential"] is not None
    assert verifier.check_credential(ok.update, ok.outcome.evidence["credential"])


# -- Separ ------------------------------------------------------------------------

def separ():
    system = SeparSystem(["uber", "lyft", "grab"], weekly_hour_cap=40)
    system.register_worker("w")
    return system


def test_separ_enforces_cross_platform_cap():
    system = separ()
    assert system.complete_task("w", "uber", 25).accepted
    assert system.complete_task("w", "lyft", 15).accepted
    result = system.complete_task("w", "grab", 1)
    assert not result.accepted
    assert result.reason == "weekly hour cap reached"
    assert system.hours_worked("w") == 40


def test_separ_no_platform_sees_worker_identity():
    system = separ()
    system.complete_task("w", "uber", 10)
    system.complete_task("w", "lyft", 10)
    for platform in system.platforms.values():
        rows = platform.database.table("tasks").rows()
        assert all(row["pseudonym"] != "w" for row in rows)
        assert "w" not in str(platform.observed_serials)


def test_separ_weekly_reset():
    system = separ()
    assert system.complete_task("w", "uber", 40).accepted
    assert not system.complete_task("w", "uber", 1).accepted
    system.advance_weeks(1)
    assert system.complete_task("w", "uber", 40).accepted


def test_separ_pseudonyms_rotate_weekly():
    system = separ()
    system.complete_task("w", "uber", 5)
    first = system.workers["w"].pseudonym(0)
    system.advance_weeks(1)
    system.complete_task("w", "uber", 5)
    second = system.workers["w"].pseudonym(1)
    assert first != second


def test_separ_lower_bound_regulation():
    system = separ()
    system.complete_task("w", "uber", 12)
    assert system.check_lower_bound("w", 10)
    assert not system.check_lower_bound("w", 13)


def test_separ_authority_single_point_of_failure():
    """The paper's acknowledged Separ limitation, reproduced."""
    system = separ()
    system.authority_offline = True
    result = system.complete_task("w", "uber", 5)
    assert not result.accepted
    assert result.reason == "authority unavailable"


def test_separ_collusion_view_pools_only_pseudonym_counts():
    system = separ()
    system.complete_task("w", "uber", 10)
    system.complete_task("w", "lyft", 5)
    view = system.collusion_view(["uber", "lyft"])
    pseudonym = system.workers["w"].pseudonym(0)
    # The coalition can total tasks per pseudonym (2 tasks)...
    assert view["pseudonym_counts"][pseudonym] == 2
    # ...but sees 15 unlinkable serials, not who the worker is.
    assert len(view["serials"]) == 15
    assert "w" not in str(view)


def test_separ_blockchain_anchors_spends():
    system = separ()
    system.complete_task("w", "uber", 3)
    system.settle()
    counts = system.blockchain.committed_counts()
    assert sum(counts.values()) >= 1


def test_separ_rejects_nonpositive_hours():
    system = separ()
    assert not system.complete_task("w", "uber", 0).accepted


def test_separ_needs_multiple_platforms():
    with pytest.raises(PReVerError):
        SeparSystem(["solo"])


def test_separ_regulation_signed_by_authority():
    system = separ()
    assert system.authority_participant.verifier().verify(
        system.regulation.body_bytes(), system.regulation.signature
    )
