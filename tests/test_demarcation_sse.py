"""The demarcation baseline (paper ref [19]) and dynamic SSE
(refs [32]/[40]/[59])."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.demarcation import DemarcationError, DemarcationFederation
from repro.privacy.sse import SSEClient, SSEError, SSEServer


# -- demarcation protocol --------------------------------------------------------

def federation(platforms=4, bound=40.0):
    return DemarcationFederation(
        [f"p{i}" for i in range(platforms)], bound=bound
    )


def test_local_consumption_needs_no_messages():
    fed = federation()
    assert fed.consume("p0", "worker-1", 5.0)  # within p0's 10-share
    assert fed.metrics.counter("demarcation.messages").total == 0


def test_transfers_kick_in_beyond_local_share():
    fed = federation()
    assert fed.consume("p0", "w", 25.0)  # needs slack from peers
    assert fed.metrics.counter("demarcation.messages").total > 0
    assert fed.peer_visible_log  # the leakage is real


def test_global_bound_enforced():
    fed = federation(bound=40.0)
    assert fed.consume("p0", "w", 30.0)
    assert fed.consume("p1", "w", 10.0)
    assert not fed.consume("p2", "w", 1.0)
    assert fed.total_consumed("w") == 40.0
    assert fed.invariant_holds("w")


def test_groups_are_independent_budgets():
    fed = federation(bound=10.0)
    assert fed.consume("p0", "alice", 10.0)
    assert fed.consume("p0", "bob", 10.0)
    assert not fed.consume("p0", "alice", 1.0)


def test_invariant_holds_under_interleaving():
    fed = federation(platforms=3, bound=30.0)
    from repro.common.randomness import deterministic_rng

    rng = deterministic_rng(4)
    names = list(fed.platforms)
    for _ in range(200):
        platform = names[rng.randbelow(3)]
        fed.consume(platform, "g", 1 + rng.randbelow(5))
        assert fed.invariant_holds("g")
    assert fed.total_consumed("g") <= 30.0


@given(spends=st.lists(
    st.tuples(st.integers(0, 3), st.integers(1, 15)), max_size=30
))
@settings(max_examples=40)
def test_never_exceeds_bound_property(spends):
    fed = federation(platforms=4, bound=40.0)
    names = list(fed.platforms)
    accepted_total = 0
    for platform_index, amount in spends:
        if fed.consume(names[platform_index], "w", float(amount)):
            accepted_total += amount
        assert fed.invariant_holds("w")
    assert accepted_total <= 40
    assert fed.total_consumed("w") == accepted_total


def test_demarcation_leaks_transfer_history():
    """The reason PReVer needs private mechanisms: the transfer log is
    visible to every peer."""
    fed = federation()
    fed.consume("p0", "worker-secret", 25.0)
    summary = fed.leakage_summary()
    assert summary["transfers"] > 0
    assert any(t["group"] == "worker-secret" for t in fed.peer_visible_log)


def test_demarcation_validation():
    with pytest.raises(DemarcationError):
        DemarcationFederation(["solo"], bound=1.0)
    with pytest.raises(DemarcationError):
        DemarcationFederation(["a", "b"], bound=-1.0)
    fed = federation()
    with pytest.raises(DemarcationError):
        fed.consume("p0", "w", -1.0)


def test_demarcation_matches_token_decisions():
    """Same policy, same accept/reject pattern as the token mechanism
    (both enforce SUM <= bound exactly)."""
    from repro.core.federated import TokenVerifier
    from repro.model.constraints import upper_bound_regulation
    from repro.model.update import Update, UpdateOperation

    spends = [15, 15, 9, 2, 1]
    fed = federation(platforms=2, bound=40.0)
    demarcation_decisions = [
        fed.consume("p0", "w", float(amount)) for amount in spends
    ]
    token = TokenVerifier(
        upper_bound_regulation("cap", "tasks", "hours", 40, ["worker"])
    )
    token_decisions = []
    for i, amount in enumerate(spends):
        update = Update(
            table="tasks", operation=UpdateOperation.INSERT,
            payload={"task_id": f"t{i}", "worker": "w", "hours": amount},
            producers=["w"], managers=["p0"],
        )
        token_decisions.append(token.verify(update, 0.0).accepted)
    assert demarcation_decisions == token_decisions


# -- searchable encryption --------------------------------------------------------

@pytest.fixture()
def sse():
    return SSEClient(master_key=b"k" * 32)


def test_add_and_search(sse):
    sse.add_record("doc-1", ["privacy", "ledger"])
    sse.add_record("doc-2", ["privacy"])
    sse.add_record("doc-3", ["consensus"])
    assert sorted(sse.search("privacy")) == ["doc-1", "doc-2"]
    assert sse.search("consensus") == ["doc-3"]
    assert sse.search("nothing") == []


def test_dynamic_additions_are_searchable(sse):
    sse.add_record("a", ["w"])
    assert sse.search("w") == ["a"]
    sse.add_record("b", ["w"])
    assert sorted(sse.search("w")) == ["a", "b"]


def test_server_never_sees_keywords_or_ids(sse):
    sse.add_record("secret-record", ["secret-keyword"])
    server = sse.server
    blob = str(server._index)
    assert "secret-record" not in blob
    assert "secret-keyword" not in blob


def test_forward_privacy(sse):
    """Tokens issued for past searches do not cover future additions:
    the server cannot match a new document against an old query."""
    sse.add_record("old-doc", ["w"])
    issued = set(sse.issued_token_view("w"))
    sse.search("w")  # server now holds tokens for positions 0..0
    sse.add_record("new-doc", ["w"])
    new_labels = set(sse.issued_token_view("w")) - issued
    assert new_labels  # the new addition lives at a fresh label
    # Replaying the OLD token set finds only the old document.
    results = sse.server.search(sorted(issued))
    assert len(results) == 1


def test_search_pattern_leakage_is_real(sse):
    """Honest leakage accounting: repeating a search shows the server
    an identical label set (EQUALITY_PATTERN in the profile)."""
    sse.add_record("a", ["w"])
    sse.search("w")
    sse.search("w")
    assert sse.server.search_log[-1] == sse.server.search_log[-2]


def test_volume_leakage_only(sse):
    sse.add_record("a", ["x", "y"])
    assert sse.server.index_size() == 2  # one entry per (record, keyword)


def test_sse_validation():
    with pytest.raises(SSEError):
        SSEClient(master_key=b"short")
    client = SSEClient(master_key=b"k" * 32)
    with pytest.raises(SSEError):
        client.add_record("x" * 40, ["w"])


@given(docs=st.lists(
    st.tuples(st.integers(0, 30), st.sampled_from(["a", "b", "c"])),
    max_size=40,
))
@settings(max_examples=25, deadline=None)
def test_sse_matches_plain_inverted_index(docs):
    client = SSEClient(master_key=b"m" * 32)
    reference: dict = {}
    for i, (doc, keyword) in enumerate(docs):
        record_id = f"r{i}-{doc}"
        client.add_record(record_id, [keyword])
        reference.setdefault(keyword, []).append(record_id)
    for keyword in ("a", "b", "c"):
        assert sorted(client.search(keyword)) == sorted(
            reference.get(keyword, [])
        )
