"""Wire-protocol tests: framing fail-closed, envelope validation,
update/result wire round trips, and the docs/PROTOCOL.md byte pins.

The pinning test at the bottom is what makes PROTOCOL.md *normative*:
every ```frame example in the spec is re-encoded through the real
codec and compared byte for byte, so the spec and the implementation
cannot drift apart silently.
"""

import asyncio
import json
import pathlib
import re

import pytest

from repro.crypto.group import SchnorrGroup
from repro.crypto.signatures import SchnorrVerifier
from repro.model.participants import DataProducer
from repro.model.policy import Visibility
from repro.model.update import Update, UpdateOperation
from repro.serve import protocol
from repro.serve.protocol import (
    CODEC_JSON,
    FRAME_HEADER,
    FrameError,
    MessageError,
    decode_header,
    decode_payload,
    encode_frame,
    make_message,
    read_frame,
    result_from_wire,
    update_from_wire,
    update_to_wire,
    validate_message,
)

DOCS = pathlib.Path(__file__).resolve().parent.parent / "docs"


def read_from_bytes(data: bytes):
    """Run read_frame against a literal byte stream ending in EOF."""
    async def inner():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_frame(reader)

    return asyncio.run(inner())


def sample_message(msg_id=7):
    return make_message("HELLO", msg_id,
                        {"producer": "alice", "public_key": 5, "version": 1})


# -- framing -----------------------------------------------------------------


def test_frame_roundtrip():
    message = sample_message()
    frame = encode_frame(message)
    length, codec = decode_header(frame[:5])
    assert codec == CODEC_JSON
    assert length == len(frame) - 5
    assert decode_payload(codec, frame[5:]) == message


def test_frame_encoding_is_deterministic():
    a = encode_frame({"v": 1, "type": "RETRY", "id": 3, "body": {"b": 1, "a": 2}})
    b = encode_frame({"id": 3, "body": {"a": 2, "b": 1}, "type": "RETRY", "v": 1})
    assert a == b  # canonical JSON: key order cannot change the bytes


def test_torn_header_fails_closed():
    with pytest.raises(FrameError, match="torn frame header"):
        decode_header(b"\x00\x00")
    with pytest.raises(FrameError, match="torn frame header"):
        read_from_bytes(b"\x00\x00\x01")  # EOF mid-header


def test_torn_payload_fails_closed():
    frame = encode_frame(sample_message())
    with pytest.raises(FrameError, match="torn frame payload"):
        read_from_bytes(frame[:-3])  # EOF mid-payload


def test_clean_eof_returns_none():
    assert read_from_bytes(b"") is None


def test_oversized_frame_rejected_from_header_alone():
    header = FRAME_HEADER.pack(1 << 21, CODEC_JSON)
    with pytest.raises(FrameError, match="exceeds") as excinfo:
        decode_header(header, max_frame_bytes=1 << 20)
    assert excinfo.value.symbol == "FRAME_TOO_LARGE"


def test_zero_length_and_unknown_codec_rejected():
    with pytest.raises(FrameError, match="zero-length"):
        decode_header(FRAME_HEADER.pack(0, CODEC_JSON))
    with pytest.raises(FrameError, match="unsupported codec"):
        decode_header(FRAME_HEADER.pack(10, 0x7F))


def test_garbage_payload_fails_closed():
    garbage = b"\x00\x00\x00\x04\x01\xff\xfe\xfd\xfc"
    with pytest.raises(FrameError, match="undecodable"):
        read_from_bytes(garbage)
    # Valid JSON that is not an object is a message error, not a frame error.
    payload = b"[1,2]"
    frame = FRAME_HEADER.pack(len(payload), CODEC_JSON) + payload
    with pytest.raises(MessageError, match="not a JSON object"):
        read_from_bytes(frame)


# -- the envelope ------------------------------------------------------------


def test_envelope_requires_exactly_four_keys():
    good = sample_message()
    assert validate_message(good) is good
    for broken in (
        {k: v for k, v in good.items() if k != "id"},     # missing key
        dict(good, extra=1),                               # unknown key
    ):
        with pytest.raises(MessageError, match="exactly the keys"):
            validate_message(broken)


def test_envelope_version_mismatch_is_unsupported_version():
    with pytest.raises(MessageError) as excinfo:
        validate_message(dict(sample_message(), v=2))
    assert excinfo.value.symbol == "UNSUPPORTED_VERSION"


def test_envelope_rejects_bad_type_and_id_and_body():
    good = sample_message()
    with pytest.raises(MessageError, match="unknown message type"):
        validate_message(dict(good, type="GOSSIP"))
    for bad_id in ("7", True, -1, 1.5):
        with pytest.raises(MessageError, match="id must be"):
            validate_message(dict(good, id=bad_id))
    with pytest.raises(MessageError, match="body must be"):
        validate_message(dict(good, body=[1]))


def test_unknown_body_keys_are_legal():
    # The additive-evolution rule: bodies may grow fields old peers skip.
    message = make_message("RETRY", 1, {"retry_after_ms": 25,
                                        "queue_depth": 3,
                                        "not_yet_invented": True})
    assert validate_message(message) is message


# -- updates and results on the wire -----------------------------------------


def signed_update():
    producer = DataProducer("alice")
    update = Update(
        table="emissions", operation=UpdateOperation.MODIFY,
        payload={"id": 4, "co2": 17}, key=(4,),
        visibility=Visibility.PUBLIC, managers=["cloud"],
        update_id="upd-wire-1",
    ).sign_with(producer)
    return producer, update


def test_update_wire_roundtrip_preserves_signed_bytes():
    producer, update = signed_update()
    rebuilt = update_from_wire(update_to_wire(update))
    assert rebuilt.body_bytes() == update.body_bytes()
    assert rebuilt.key == (4,)
    assert rebuilt.visibility is Visibility.PUBLIC
    # ... and the signature still verifies against the rebuilt bytes.
    verifier = SchnorrVerifier(SchnorrGroup.default(),
                               rebuilt.signer_public_key)
    assert verifier.verify(rebuilt.body_bytes(), rebuilt.signature)


def test_update_from_wire_validates_every_field():
    _, update = signed_update()
    good = update_to_wire(update)
    for name, value in [
        ("table", 7), ("operation", "upsert"), ("payload", [1]),
        ("key", "k"), ("visibility", "secret"), ("producers", [1]),
        ("managers", "cloud"), ("update_id", None),
        ("signature", {"R": "x", "s": 1}), ("signer_public_key", "pk"),
    ]:
        with pytest.raises(MessageError) as excinfo:
            update_from_wire(dict(good, **{name: value}))
        assert excinfo.value.symbol == "BAD_MESSAGE", name
    with pytest.raises(MessageError, match="JSON object"):
        update_from_wire("not a dict")


def test_result_wire_roundtrip():
    doc = {
        "update_id": "upd-1", "accepted": True, "applied": True,
        "status": "applied", "ledger_sequence": 9, "engine": "plaintext",
        "failed_constraint": None, "rejection_reason": None,
        "trace_id": "trc-1", "shard": None,
    }
    result = result_from_wire(doc)
    assert result.update_id == "upd-1"
    assert result.ledger_sequence == 9
    with pytest.raises(MessageError, match="missing fields"):
        result_from_wire({"update_id": "upd-1"})


def test_auth_bytes_bind_producer_and_purpose():
    a = protocol.auth_bytes("alice", "aa" * 16)
    b = protocol.auth_bytes("mallory", "aa" * 16)
    assert a != b  # a signature can never be replayed for another name
    assert protocol.AUTH_PURPOSE.encode() in a


# -- the spec is normative: docs/PROTOCOL.md byte pins -----------------------


def spec_frames():
    """Yield (json_line, hex_bytes) for every ```frame block in the spec."""
    text = (DOCS / "PROTOCOL.md").read_text()
    blocks = re.findall(r"```frame\n(.*?)```", text, flags=re.DOTALL)
    assert blocks, "PROTOCOL.md must pin at least one frame example"
    for block in blocks:
        first, _, rest = block.partition("\n")
        yield first.strip(), bytes.fromhex("".join(rest.split()))


def test_protocol_md_examples_match_codec():
    for json_line, pinned in spec_frames():
        message = json.loads(json_line)
        assert encode_frame(message) == pinned, (
            f"PROTOCOL.md frame for {message.get('type')} does not match "
            f"the codec output — spec and implementation have drifted")


def test_protocol_md_error_codes_match():
    text = (DOCS / "PROTOCOL.md").read_text()
    for symbol, code in protocol.ERROR_CODES.items():
        assert re.search(rf"\b{symbol}\b\D+\b{code}\b", text) or \
            re.search(rf"\b{code}\b\D+\b{symbol}\b", text), (
                f"PROTOCOL.md must document error {symbol} = {code}")
