"""End-to-end integration: the full Figure-2 pipeline per context, with
integrity auditing on top — the scenarios a PReVer adopter would run.
"""

import pytest

from repro import (
    Authority,
    ColumnType,
    Database,
    DataProducer,
    PReVer,
    TableSchema,
    Update,
    UpdateOperation,
    upper_bound_regulation,
    single_private_database,
    federated_private_databases,
)
from repro.chain.blockchain import PermissionedBlockchain
from repro.core.separ import SeparSystem
from repro.ledger.audit import LedgerAuditor
from repro.workloads.ycsb import YCSBOperation, YCSBWorkload


def test_single_private_database_full_lifecycle():
    """RC1 + RC4: encrypted verification, application, and audit."""
    schema = TableSchema.build(
        "emissions",
        [("id", ColumnType.INT), ("org", ColumnType.TEXT),
         ("co2", ColumnType.INT)],
        primary_key=["id"],
    )
    db = Database("cloud")
    db.create_table(schema)
    regulation = upper_bound_regulation("cap", "emissions", "co2", 500, ["org"])
    framework = single_private_database(db, [regulation], engine="paillier")

    auditor = LedgerAuditor("regulator")
    accepted = rejected = 0
    for i, amount in enumerate([100, 200, 150, 100, 50]):
        update = Update(table="emissions", operation=UpdateOperation.INSERT,
                        payload={"id": i, "org": "acme", "co2": amount})
        result = framework.submit(update)
        accepted += result.applied
        rejected += not result.applied
        assert auditor.audit(framework.ledger).ok

    # 100+200+150 = 450 fits; +100 would be 550 (reject); +50 = 500 fits.
    assert accepted == 4 and rejected == 1
    assert db.aggregate("emissions", "SUM", "co2") == 500
    # The full decision history (including the rejection) is on the ledger.
    statuses = [e["status"] for e in framework.decision_history()]
    assert statuses.count("rejected") == 1


def test_federated_pipeline_with_signed_updates_and_audit():
    """RC2 + provenance + RC4."""
    def platform(name):
        db = Database(name)
        db.create_table(TableSchema.build(
            "tasks",
            [("task_id", ColumnType.TEXT), ("worker", ColumnType.TEXT),
             ("hours", ColumnType.INT)],
            primary_key=["task_id"],
        ))
        return db

    dbs = [platform("uber"), platform("lyft")]
    regulation = upper_bound_regulation("flsa", "tasks", "hours", 40, ["worker"])
    framework, verifier = federated_private_databases(dbs, regulation,
                                                      engine="mpc")
    framework.require_signed_updates = True
    worker = DataProducer("dora")

    def submit(hours, manager, sign=True):
        update = Update(
            table="tasks", operation=UpdateOperation.INSERT,
            payload={"task_id": f"t-{manager}-{hours}", "worker": "dora",
                     "hours": hours},
            managers=[manager],
        )
        if sign:
            update.sign_with(worker)
        else:
            update.producers.append("dora")
        return framework.submit(update)

    assert submit(30, "uber").accepted
    assert submit(10, "lyft").accepted
    assert not submit(1, "uber").accepted        # cap
    assert not submit(1, "lyft", sign=False).accepted  # unsigned
    assert dbs[0].aggregate("tasks", "SUM", "hours") == 30
    assert dbs[1].aggregate("tasks", "SUM", "hours") == 10
    assert LedgerAuditor().audit(framework.ledger, spot_check=2).ok


def test_separ_anchored_on_blockchain_with_integrity_check():
    system = SeparSystem(["uber", "lyft"], weekly_hour_cap=20)
    system.register_worker("w")
    for platform, hours in [("uber", 8), ("lyft", 8), ("uber", 4)]:
        assert system.complete_task("w", platform, hours).accepted
    assert not system.complete_task("w", "lyft", 1).accepted
    system.settle()
    counts = system.blockchain.committed_counts()
    assert sum(counts.values()) == 3
    # The spend ledger is auditable and consistent.
    assert LedgerAuditor().audit(system.registry.ledger).ok


def test_blockchain_anchoring_of_framework_decisions():
    """RC4-federated: decision records as blockchain transactions with
    inclusion proofs a light client can check."""
    chain = PermissionedBlockchain(block_size=4)
    schema = TableSchema.build(
        "events", [("id", ColumnType.INT), ("v", ColumnType.INT)],
        primary_key=["id"],
    )
    db = Database("d")
    db.create_table(schema)
    framework = PReVer([db])
    for i in range(8):
        result = framework.submit(Update(
            table="events", operation=UpdateOperation.INSERT,
            payload={"id": i, "v": i},
        ))
        chain.submit_public({"decision": result.outcome.to_dict(),
                             "ledger_seq": result.ledger_sequence})
    chain.process()
    chain.flush()
    assert chain.verify_chain()
    tx, proof = chain.prove_transaction(0, 1)
    assert PermissionedBlockchain.verify_transaction(chain.block(0), tx, proof)


def test_ycsb_over_regulated_pipeline_vs_plain_database():
    """The Section-6 comparison in miniature: the same YCSB-A write
    stream through a plain database and through the PReVer pipeline
    must produce identical final states (the privacy layer changes
    cost, never semantics)."""
    workload = YCSBWorkload("A", record_count=50, operation_count=300, seed=9)
    schema = TableSchema.build(
        "kv", [("key", ColumnType.INT), ("value", ColumnType.INT)],
        primary_key=["key"],
    )

    plain = Database("plain")
    plain.create_table(schema)
    regulated_db = Database("regulated")
    regulated_db.create_table(schema)
    framework = PReVer([regulated_db])

    for key, value in workload.initial_records():
        plain.insert("kv", {"key": key, "value": value})
        framework.submit(Update(table="kv", operation=UpdateOperation.INSERT,
                                payload={"key": key, "value": value}))

    for op in workload.operations():
        if op.op is YCSBOperation.UPDATE:
            plain.update("kv", (op.key,), {"value": op.value})
            framework.submit(Update(
                table="kv", operation=UpdateOperation.MODIFY,
                payload={"value": op.value}, key=(op.key,),
            ))

    assert plain.table("kv").rows() == regulated_db.table("kv").rows()
    assert len(framework.ledger) > 0
