"""The live ops endpoint: scrapes, probes, and verification trails.

The load-bearing guarantees pinned here:

* ``/metrics`` and ``/metrics.json`` serve the framework's registry
  over real HTTP (schema v2, Prometheus content type);
* ``/healthz`` is 200 on a healthy framework and flips to 503 when the
  WAL is torn down underneath it (injected failure);
* ``/readyz`` additionally detects a live ledger that no longer
  extends the last durably anchored root;
* ``/trace/<trace_id>`` returns an update's full verification trail —
  anchored payload, inclusion proof, correlated events — and the proof
  re-verifies *client-side* against the last anchored root, from the
  JSON alone.
"""

import json
import urllib.error
import urllib.request

from repro.core.framework import PReVer
from repro.crypto.merkle import InclusionProof
from repro.durability import Durability
from repro.ledger.central import CentralLedger, LedgerDigest, LedgerEntry
from repro.obs.events import EventLog
from repro.obs.export import METRICS_SCHEMA_VERSION
from repro.obs.server import PROMETHEUS_CONTENT_TYPE, OpsServer, start_ops_server
from repro.obs.tracing import Tracer

from tests.test_pipeline_stages import build_plaintext, golden_stream, make_db


def http_get(url):
    """GET ``url``; returns (status, content_type, body_bytes) without
    raising on 4xx/5xx."""
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return (response.status, response.headers.get("Content-Type"),
                    response.read())
    except urllib.error.HTTPError as error:
        return error.code, error.headers.get("Content-Type"), error.read()


# -- scrapes ----------------------------------------------------------------


def test_metrics_endpoints_over_http():
    framework = build_plaintext()
    for update in golden_stream():
        framework.submit(update)
    with start_ops_server(framework) as server:
        status, content_type, body = http_get(server.url("/metrics"))
        assert status == 200
        assert content_type == PROMETHEUS_CONTENT_TYPE
        text = body.decode("utf-8")
        assert "repro_pipeline_updates_total" in text
        assert 'quantile="0.99"' in text

        status, content_type, body = http_get(server.url("/metrics.json"))
        assert status == 200
        assert content_type == "application/json"
        doc = json.loads(body)
        assert doc["schema_version"] == METRICS_SCHEMA_VERSION
        assert doc["counters"]["pipeline.updates"]["count"] == len(
            golden_stream()
        )


def test_unknown_routes_are_404():
    framework = build_plaintext()
    with start_ops_server(framework) as server:
        status, _, body = http_get(server.url("/nope"))
        assert status == 404
        assert "/metrics" in json.loads(body)["routes"]
        status, _, _ = http_get(server.url("/trace/never-traced"))
        assert status == 404


def test_handler_errors_become_500_not_crashes():
    class Broken:
        @property
        def metrics(self):
            raise RuntimeError("boom")

    server = OpsServer(Broken())
    status, _, body = server.handle("/metrics")
    assert status == 500
    assert "boom" in json.loads(body)["error"]


# -- probes -----------------------------------------------------------------


def test_healthz_and_readyz_on_healthy_framework(tmp_path):
    framework = build_plaintext(durability=Durability.wal(str(tmp_path)))
    framework.submit_many(golden_stream())
    with start_ops_server(framework) as server:
        status, _, body = http_get(server.url("/healthz"))
        report = json.loads(body)
        assert status == 200 and report["ok"]
        assert report["checks"]["wal"]["ok"]
        assert report["checks"]["ledger"]["ok"]
        assert report["checks"]["executor"]["ok"]

        status, _, body = http_get(server.url("/readyz"))
        ready = json.loads(body)
        assert status == 200 and ready["ok"]
        assert ready["checks"]["anchored_root"] == {
            "ok": True,
            "anchored": True,
            "size": framework._last_anchored_digest.size,
            "root": framework._last_anchored_digest.root.hex(),
        }
    framework.close()


def test_healthz_flips_unhealthy_on_wal_failure(tmp_path):
    framework = build_plaintext(durability=Durability.wal(str(tmp_path)))
    framework.submit_many(golden_stream()[:4])
    with start_ops_server(framework) as server:
        status, _, _ = http_get(server.url("/healthz"))
        assert status == 200
        # Injected failure: tear the WAL down underneath the framework.
        framework._wal.close()
        status, _, body = http_get(server.url("/healthz"))
        report = json.loads(body)
        assert status == 503
        assert not report["ok"]
        assert not report["checks"]["wal"]["ok"]
        assert report["checks"]["ledger"]["ok"]  # only the WAL is sick


def test_readyz_detects_anchored_root_divergence(tmp_path):
    framework = build_plaintext(durability=Durability.wal(str(tmp_path)))
    framework.submit_many(golden_stream()[:4])
    assert framework.readiness_report()["ok"]
    # Simulate in-memory divergence from the durable anchor.
    anchored = framework._last_anchored_digest
    framework._last_anchored_digest = LedgerDigest(
        size=anchored.size, root=b"\x00" * 32
    )
    report = framework.readiness_report()
    assert not report["ok"]
    assert not report["checks"]["anchored_root"]["ok"]
    framework.close()


def test_readyz_without_durability_is_ready():
    framework = build_plaintext()
    framework.submit(golden_stream()[0])
    report = framework.readiness_report()
    assert report["ok"]
    assert report["checks"]["anchored_root"] == {"ok": True, "anchored": False}
    assert report["checks"]["wal"] == {"ok": True, "enabled": False}


# -- verification trails ----------------------------------------------------


def traced_framework(state_dir):
    tracer = Tracer().add_sink(EventLog())
    framework = build_plaintext(
        durability=Durability.wal(state_dir), tracer=tracer
    )
    return framework


def test_trace_trail_reverifies_against_anchored_root(tmp_path):
    framework = traced_framework(str(tmp_path))
    results = framework.submit_many(golden_stream())
    accepted = next(r for r in results if r.applied)
    with start_ops_server(framework) as server:
        status, _, body = http_get(server.url(f"/trace/{accepted.trace_id}"))
    assert status == 200
    trail = json.loads(body)
    assert trail["trace_id"] == accepted.trace_id
    assert trail["sequence"] == accepted.ledger_sequence
    assert trail["verified"] is True
    # The digest the proof targets is the last durably anchored root.
    anchored = framework._last_anchored_digest
    assert trail["digest"] == {
        "size": anchored.size, "root": anchored.root.hex(),
    }
    # Client-side re-verification from the served JSON alone: rebuild
    # the entry, digest, and proof, and check the inclusion path.
    entry = LedgerEntry(sequence=trail["sequence"], payload=trail["payload"])
    digest = LedgerDigest(
        size=trail["digest"]["size"],
        root=bytes.fromhex(trail["digest"]["root"]),
    )
    proof = InclusionProof(
        leaf_index=trail["proof"]["leaf_index"],
        tree_size=trail["proof"]["tree_size"],
        path=[bytes.fromhex(node) for node in trail["proof"]["path"]],
    )
    assert CentralLedger.verify_entry(digest, entry, proof)
    # Tampered payloads must not verify.
    tampered = LedgerEntry(
        sequence=trail["sequence"],
        payload={**trail["payload"], "status": "applied-but-not-really"},
    )
    assert not CentralLedger.verify_entry(digest, tampered, proof)
    # The correlated event-log records ride along.
    kinds = {event["kind"] for event in trail["events"]}
    assert "constraint_verdict" in kinds
    assert "ledger_anchor" in kinds
    framework.close()


def test_trace_trail_includes_rejections(tmp_path):
    framework = traced_framework(str(tmp_path))
    results = framework.submit_many(golden_stream())
    rejected = next(r for r in results if not r.accepted)
    trail = framework.verification_trail(rejected.trace_id)
    assert trail is not None
    assert trail["payload"]["status"] == "rejected"
    assert trail["verified"] is True
    kinds = {event["kind"] for event in trail["events"]}
    assert "rejection" in kinds
    framework.close()


def test_trace_trail_absent_without_tracing():
    framework = build_plaintext()
    framework.submit(golden_stream()[0])
    assert framework.verification_trail("tr-whatever") is None


def test_trail_before_first_anchor_uses_live_digest():
    # No durability: nothing sets _last_anchored_digest, so the trail
    # must fall back to the live ledger digest and still verify.
    tracer = Tracer().add_sink(EventLog())
    framework = PReVer([make_db()], tracer=tracer)
    result = framework.submit(golden_stream()[0])
    trail = framework.verification_trail(result.trace_id)
    assert trail is not None and trail["verified"] is True
    assert trail["digest"]["size"] == len(framework.ledger)
