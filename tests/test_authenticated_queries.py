"""Authenticated query results: membership, absence, staleness, forgery."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import IntegrityError
from repro.database.schema import ColumnType, TableSchema
from repro.database.table import Table
from repro.ledger.authenticated import (
    AbsenceProof,
    AuthenticatedTableView,
    RowProof,
    verify_absence,
    verify_row,
)
from repro.ledger.audit import LedgerAuditor


def make_table(rows):
    table = Table(TableSchema.build(
        "accounts",
        [("account_id", ColumnType.INT), ("balance", ColumnType.INT)],
        primary_key=["account_id"],
    ))
    for account_id, balance in rows:
        table.insert({"account_id": account_id, "balance": balance})
    return table


@pytest.fixture()
def view():
    return AuthenticatedTableView(make_table([(1, 100), (3, 300), (7, 700)]))


def test_membership_proof_verifies(view):
    commitment = view.snapshot()
    proof = view.prove_row((3,))
    assert proof.row["balance"] == 300
    assert verify_row(commitment, proof)


def test_forged_value_rejected(view):
    commitment = view.snapshot()
    proof = view.prove_row((3,))
    forged = RowProof(key=proof.key,
                      row={"account_id": 3, "balance": 999},
                      proof=proof.proof)
    assert not verify_row(commitment, forged)


def test_proof_does_not_transfer_between_versions(view):
    first = view.snapshot()
    proof = view.prove_row((3,), version=0)
    view.table.update_row((3,), {"balance": 301})
    second = view.snapshot()
    # The old proof verifies against the old commitment only.
    assert verify_row(first, proof)
    assert not verify_row(second, proof)
    fresh = view.prove_row((3,), version=1)
    assert verify_row(second, fresh)
    assert fresh.row["balance"] == 301


def test_absence_between_two_rows(view):
    commitment = view.snapshot()
    proof = view.prove_absent((5,))
    assert verify_absence(commitment, proof)
    assert proof.left.key == (3,) and proof.right.key == (7,)


def test_absence_before_first_and_after_last(view):
    commitment = view.snapshot()
    assert verify_absence(commitment, view.prove_absent((0,)))
    assert verify_absence(commitment, view.prove_absent((99,)))


def test_absence_on_empty_table():
    view = AuthenticatedTableView(make_table([]))
    commitment = view.snapshot()
    proof = view.prove_absent((1,))
    assert proof.left is None and proof.right is None
    assert verify_absence(commitment, proof)


def test_absence_unprovable_for_existing_row(view):
    view.snapshot()
    with pytest.raises(IntegrityError):
        view.prove_absent((3,))


def test_suppression_attack_rejected(view):
    """A manager hiding row 3 by presenting rows 1 and 7 as
    'neighbours' fails: their leaves are not adjacent."""
    commitment = view.snapshot()
    left = view.prove_row((1,))
    right = view.prove_row((7,))
    forged = AbsenceProof(missing_key=(3,), left=left, right=right)
    assert not verify_absence(commitment, forged)


def test_absence_with_wrong_side_neighbours_rejected(view):
    commitment = view.snapshot()
    # Neighbours that don't actually bracket the key.
    left = view.prove_row((3,))
    right = view.prove_row((7,))
    forged = AbsenceProof(missing_key=(2,), left=left, right=right)
    assert not verify_absence(commitment, forged)


def test_truncation_after_last_rejected(view):
    """Claiming 'key 5 is past the end' while rows beyond exist."""
    commitment = view.snapshot()
    left = view.prove_row((3,))  # not the last leaf
    forged = AbsenceProof(missing_key=(5,), left=left, right=None)
    assert not verify_absence(commitment, forged)


def test_commitments_are_ledger_anchored_and_auditable(view):
    view.snapshot()
    view.table.insert({"account_id": 9, "balance": 900})
    view.snapshot()
    assert len(view.ledger) == 2
    assert LedgerAuditor().audit(view.ledger).ok


def test_proof_before_snapshot_rejected(view):
    with pytest.raises(IntegrityError):
        view.prove_row((1,))
    with pytest.raises(IntegrityError):
        view.latest()


@given(keys=st.sets(st.integers(0, 60), min_size=1, max_size=20),
       probe=st.integers(0, 60))
@settings(max_examples=40, deadline=None)
def test_every_probe_is_provable_one_way_or_the_other(keys, probe):
    view = AuthenticatedTableView(
        make_table([(k, k * 10) for k in sorted(keys)])
    )
    commitment = view.snapshot()
    if probe in keys:
        proof = view.prove_row((probe,))
        assert verify_row(commitment, proof)
        assert proof.row["balance"] == probe * 10
    else:
        assert verify_absence(commitment, view.prove_absent((probe,)))
