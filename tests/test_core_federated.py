"""RC2 federated engines: token-based and MPC."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.federated import MPCVerifier, TokenVerifier
from repro.core.verifiers import EngineError, PlaintextVerifier
from repro.database.engine import Database
from repro.database.expr import col, lit
from repro.database.schema import ColumnType, TableSchema
from repro.model.constraints import (
    Comparison,
    Constraint,
    ConstraintKind,
    lower_bound_regulation,
    upper_bound_regulation,
)
from repro.model.update import Update, UpdateOperation

_counter = itertools.count()


def platform_db(name):
    db = Database(name)
    db.create_table(
        TableSchema.build(
            "tasks",
            [("task_id", ColumnType.TEXT), ("worker", ColumnType.TEXT),
             ("hours", ColumnType.INT)],
            primary_key=["task_id"],
        )
    )
    return db


def task_update(worker, hours, manager):
    return Update(
        table="tasks", operation=UpdateOperation.INSERT,
        payload={"task_id": f"t{next(_counter)}", "worker": worker,
                 "hours": hours},
        producers=[worker], managers=[manager],
    )


def flsa(bound=40):
    return upper_bound_regulation("flsa", "tasks", "hours", bound, ["worker"])


def run_federated(engine_name, per_platform_hours, incoming, bound=40):
    """Pre-load two platforms, then verify one incoming update."""
    dbs = [platform_db("uber"), platform_db("lyft")]
    for db, hours in zip(dbs, per_platform_hours):
        if hours:
            db.insert("tasks", {"task_id": f"pre-{db.name}-{next(_counter)}",
                                "worker": "w", "hours": hours})
    constraint = flsa(bound)
    if engine_name == "mpc":
        engine = MPCVerifier(dbs, constraint, width=8)
    else:
        engine = PlaintextVerifier(dbs, [constraint])
    update = task_update("w", incoming, "uber")
    return engine.verify(update, now=0.0).accepted


@given(a=st.integers(0, 25), b=st.integers(0, 25), inc=st.integers(0, 25))
@settings(max_examples=10, deadline=None)
def test_mpc_agrees_with_plaintext_reference(a, b, inc):
    assert run_federated("mpc", (a, b), inc) == run_federated(
        "plaintext", (a, b), inc
    )


def test_mpc_boundary():
    assert run_federated("mpc", (20, 20), 0)
    assert not run_federated("mpc", (20, 20), 1)


def test_mpc_ge_regulation():
    dbs = [platform_db("a"), platform_db("b")]
    constraint = lower_bound_regulation("min", "tasks", "hours", 10, ["worker"])
    engine = MPCVerifier(dbs, constraint, width=8)
    assert not engine.verify(task_update("w", 5, "a"), 0.0).accepted
    assert engine.verify(task_update("w", 12, "a"), 0.0).accepted


def test_mpc_needs_two_platforms():
    with pytest.raises(EngineError):
        MPCVerifier([platform_db("solo")], flsa())


def test_mpc_rejects_nonlinear():
    bad = Constraint(
        name="nl", kind=ConstraintKind.REGULATION,
        predicate=(col("a") * col("b")) <= lit(1),
    )
    with pytest.raises(EngineError):
        MPCVerifier([platform_db("a"), platform_db("b")], bad)


def test_mpc_decision_is_only_public_output():
    dbs = [platform_db("a"), platform_db("b")]
    engine = MPCVerifier(dbs, flsa(), width=8)
    engine.verify(task_update("w", 10, "a"), 0.0)
    assert engine.manager_transcript == [("decision", True)]


# -- token engine ---------------------------------------------------------------

def token_engine(bound=10):
    return TokenVerifier(flsa(bound))


def test_token_engine_enforces_budget():
    engine = token_engine(bound=10)
    assert engine.verify(task_update("w", 6, "uber"), 0.0).accepted
    assert engine.verify(task_update("w", 4, "lyft"), 0.0).accepted
    assert not engine.verify(task_update("w", 1, "uber"), 0.0).accepted


def test_token_budgets_are_per_worker():
    engine = token_engine(bound=5)
    assert engine.verify(task_update("w1", 5, "uber"), 0.0).accepted
    assert engine.verify(task_update("w2", 5, "uber"), 0.0).accepted


def test_token_budget_resets_per_period():
    engine = token_engine(bound=5)
    week = 7 * 24 * 3600.0
    assert engine.verify(task_update("w", 5, "uber"), now=0.0).accepted
    assert not engine.verify(task_update("w", 1, "uber"), now=1.0).accepted
    assert engine.verify(task_update("w", 5, "uber"), now=week + 1).accepted


def test_token_engine_observes_serials_not_identity():
    engine = token_engine()
    engine.verify(task_update("worker-anne", 2, "uber"), 0.0)
    transcript = str(engine.manager_transcript)
    assert "worker-anne" not in transcript
    serials = [v for k, v in engine.manager_transcript if k == "serial"]
    assert len(serials) == 2


def test_token_engine_rejects_fractional_units():
    engine = TokenVerifier(
        upper_bound_regulation("cap", "tasks", "hours", 10, ["worker"])
    )
    update = Update(
        table="tasks", operation=UpdateOperation.INSERT,
        payload={"task_id": "t", "worker": "w", "hours": 1},
        producers=["w"],
    )
    update.payload["hours"] = 1  # integer fine
    assert engine.units_of(update) == 1


def test_token_engine_requires_le_aggregate():
    ge = lower_bound_regulation("min", "tasks", "hours", 10, ["worker"])
    with pytest.raises(EngineError):
        TokenVerifier(ge)
    predicate_constraint = Constraint(
        name="p", kind=ConstraintKind.INTERNAL, predicate=lit(True),
    )
    with pytest.raises(EngineError):
        TokenVerifier(predicate_constraint)


def test_token_lower_bound_checked_at_period_close():
    engine = token_engine(bound=10)
    engine.verify(task_update("w", 7, "uber"), 0.0)
    assert engine.check_lower_bound("w", period=0, minimum=5)
    assert not engine.check_lower_bound("w", period=0, minimum=8)


def test_token_vs_mpc_same_decisions_on_upper_bounds():
    """The two RC2 mechanisms must enforce identical policies."""
    sequences = [[6, 4, 1], [10, 1], [3, 3, 3, 2]]
    for seq in sequences:
        token = TokenVerifier(flsa(10))
        token_decisions = [
            token.verify(task_update("w", h, "uber"), 0.0).accepted
            for h in seq
        ]
        dbs = [platform_db(f"a{next(_counter)}"), platform_db(f"b{next(_counter)}")]
        mpc = MPCVerifier(dbs, flsa(10), width=8)
        mpc_decisions = []
        for h in seq:
            update = task_update("w", h, dbs[0].name)
            outcome = mpc.verify(update, 0.0)
            mpc_decisions.append(outcome.accepted)
            if outcome.accepted:
                dbs[0].insert("tasks", update.payload)
        assert token_decisions == mpc_decisions, seq
