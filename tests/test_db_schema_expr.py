"""Schemas and the expression AST."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.database.expr import (
    BinOp,
    Env,
    ExprError,
    FuncCall,
    Not,
    col,
    linearize,
    lit,
    update_field,
)
from repro.database.schema import Column, ColumnType, SchemaError, TableSchema


def make_schema():
    return TableSchema.build(
        "t",
        [("id", ColumnType.INT), ("name", ColumnType.TEXT),
         ("score", ColumnType.FLOAT), ("flag", ColumnType.BOOL),
         ("blob", ColumnType.BYTES)],
        primary_key=["id"],
        nullable=["score", "blob"],
    )


def test_schema_validates_types():
    schema = make_schema()
    row = schema.validate_row(
        {"id": 1, "name": "x", "score": 1.5, "flag": True, "blob": b"b"}
    )
    assert row["id"] == 1


def test_schema_fills_missing_nullable():
    schema = make_schema()
    row = schema.validate_row({"id": 1, "name": "x", "flag": False})
    assert row["score"] is None and row["blob"] is None


def test_schema_rejects_missing_non_nullable():
    schema = make_schema()
    with pytest.raises(SchemaError):
        schema.validate_row({"id": 1, "flag": True})


def test_schema_rejects_wrong_type():
    schema = make_schema()
    with pytest.raises(SchemaError):
        schema.validate_row({"id": "one", "name": "x", "flag": True})


def test_bool_is_not_int():
    schema = make_schema()
    with pytest.raises(SchemaError):
        schema.validate_row({"id": True, "name": "x", "flag": True})


def test_schema_rejects_unknown_columns():
    schema = make_schema()
    with pytest.raises(SchemaError):
        schema.validate_row({"id": 1, "name": "x", "flag": True, "extra": 1})


def test_schema_duplicate_columns_rejected():
    with pytest.raises(SchemaError):
        TableSchema.build("t", [("a", ColumnType.INT), ("a", ColumnType.INT)], ["a"])


def test_schema_requires_primary_key():
    with pytest.raises(SchemaError):
        TableSchema(name="t", columns=(Column("a", ColumnType.INT),),
                    primary_key=())


def test_schema_pk_and_index_must_exist():
    with pytest.raises(SchemaError):
        TableSchema.build("t", [("a", ColumnType.INT)], ["b"])
    with pytest.raises(SchemaError):
        TableSchema.build("t", [("a", ColumnType.INT)], ["a"], indexes=["c"])


def test_key_of():
    schema = make_schema()
    assert schema.key_of({"id": 7, "name": "x"}) == (7,)
    with pytest.raises(SchemaError):
        schema.key_of({"name": "x"})


# -- expressions ------------------------------------------------------------

def test_basic_arithmetic_and_comparison():
    env = Env(row={"hours": 30}, update={"delta": 5})
    expr = (col("hours") + update_field("delta")) <= lit(40)
    assert expr.evaluate(env) is True
    expr2 = (col("hours") + update_field("delta")) > lit(40)
    assert expr2.evaluate(env) is False


def test_boolean_combinators():
    env = Env(row={"a": 1, "b": 2})
    assert col("a").eq(lit(1)).and_(col("b").eq(lit(2))).evaluate(env)
    assert col("a").eq(lit(9)).or_(col("b").eq(lit(2))).evaluate(env)
    assert Not(col("a").eq(lit(9))).evaluate(env)


def test_in_operator():
    env = Env(row={"status": "gold"})
    assert col("status").is_in(["gold", "platinum"]).evaluate(env)
    assert not col("status").is_in(["silver"]).evaluate(env)


def test_null_propagation():
    env = Env(row={"x": None})
    assert (col("x") > lit(3)).evaluate(env) is None
    assert Not(col("x") > lit(3)).evaluate(env) is None


def test_unbound_column_raises():
    with pytest.raises(ExprError):
        col("missing").evaluate(Env(row={}))


def test_update_field_requires_update():
    with pytest.raises(ExprError):
        update_field("x").evaluate(Env(row={}))
    with pytest.raises(ExprError):
        update_field("x").evaluate(Env(row={}, update={"y": 1}))


def test_extras_binding():
    env = Env(row={}, extras={"agg_total": 12})
    assert (col("agg_total") < lit(20)).evaluate(env)


def test_functions():
    env = Env(row={"x": -5})
    assert FuncCall("abs", (col("x"),)).evaluate(env) == 5
    with pytest.raises(ExprError):
        FuncCall("nope", ()).evaluate(env)


def test_columns_and_update_fields_used():
    expr = (col("a") + col("b") * update_field("u")) <= lit(1)
    assert expr.columns_used() == {"a", "b"}
    assert expr.update_fields_used() == {"u"}


# -- linearity analysis ---------------------------------------------------------

def test_linearize_simple():
    form = linearize(col("a") + lit(2) * col("b") - lit(3))
    assert form.as_dict() == {("col", "a"): 1.0, ("col", "b"): 2.0}
    assert form.constant == -3.0


def test_linearize_update_fields():
    form = linearize(col("total") + update_field("delta"))
    assert form.as_dict() == {("col", "total"): 1.0, ("upd", "delta"): 1.0}


def test_linearize_rejects_products_of_variables():
    assert linearize(col("a") * col("b")) is None


def test_linearize_rejects_non_numeric_literals():
    assert linearize(col("a") + lit("text")) is None


def test_linearize_cancellation():
    form = linearize(col("a") - col("a") + lit(5))
    assert form.as_dict() == {}
    assert form.constant == 5.0


@given(a=st.integers(-100, 100), b=st.integers(-100, 100),
       k=st.integers(-10, 10))
@settings(max_examples=50)
def test_linearize_agrees_with_evaluation(a, b, k):
    expr = col("x") * lit(k) + update_field("y") - lit(3)
    form = linearize(expr)
    env = Env(row={"x": a}, update={"y": b})
    direct = expr.evaluate(env)
    via_form = sum(
        coeff * (a if tag == ("col", "x") else b)
        for tag, coeff in form.as_dict().items()
    ) + form.constant
    assert abs(direct - via_form) < 1e-9
