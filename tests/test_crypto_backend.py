"""Tests for the fast-math backend and its exponentiation kernels.

The backend abstraction is only sound if both implementations are
value-identical — a backend switch must never change a decision,
digest, or WAL byte — so the core of this suite is randomized
equivalence: python vs gmpy2 ``powmod``/``invert``/``mulmod`` (when
gmpy2 is importable), fixed-base tables vs plain ``pow``, and
``multi_exp`` vs a product of independent ``pow`` calls.
"""

import random

import pytest

from repro.crypto import backend
from repro.crypto.backend import (
    FixedBaseTable,
    MathBackendError,
    clear_fixed_base_cache,
    fixed_base,
    fixed_base_cache_stats,
    multi_exp,
    powmod,
)

GMPY2_AVAILABLE = backend._load_gmpy2() is not None

# A 256-bit safe prime (the default Schnorr group modulus) and a
# 128-bit odd composite: one prime and one non-prime modulus cover
# both invertibility regimes.
P = int("f9e844c492ec33833e3da2a37d60d4ae233b69d4613449d30c996bb220d133db", 16)
COMPOSITE = (2**64 + 13) * (2**64 + 141)


@pytest.fixture(autouse=True)
def _restore_backend():
    """Leave the module-level backend/caches the way we found them."""
    yield
    backend.set_backend(None)


def test_python_backend_is_always_available():
    assert backend.set_backend("python") == "python"
    assert backend.backend_name() == "python"


def test_unknown_backend_rejected():
    with pytest.raises(MathBackendError):
        backend.set_backend("cuda")


@pytest.mark.skipif(GMPY2_AVAILABLE, reason="gmpy2 is installed here")
def test_explicit_gmpy2_fails_loud_when_missing():
    """REPRO_MATH_BACKEND=gmpy2 without gmpy2 must error, not silently
    fall back (the operator asked for the fast path)."""
    with pytest.raises(MathBackendError):
        backend.set_backend("gmpy2")


def test_env_variable_selects_backend(monkeypatch):
    monkeypatch.setenv("REPRO_MATH_BACKEND", "python")
    assert backend.set_backend(None) == "python"


def test_invert_matches_pow_inverse_on_prime_modulus():
    backend.set_backend("python")
    rng = random.Random(7)
    for _ in range(50):
        a = rng.randrange(1, P)
        inv = backend.invert(a, P)
        assert a * inv % P == 1
        assert inv == pow(a, P - 2, P)  # Fermat cross-check


def test_invert_raises_on_non_invertible():
    backend.set_backend("python")
    factor = 2**64 + 13
    with pytest.raises(ValueError):
        backend.invert(factor, COMPOSITE)
    with pytest.raises(ValueError):
        backend.invert(0, P)


@pytest.mark.skipif(not GMPY2_AVAILABLE, reason="gmpy2 not installed")
def test_gmpy2_equivalence_randomized():
    """python and gmpy2 backends agree operation-by-operation (this is
    the property that lets a gmpy2 run reproduce python-run digests)."""
    py = backend._PYTHON_BACKEND
    gm = backend._load_gmpy2()
    rng = random.Random(13)
    for modulus in (P, COMPOSITE, 97, 2**512 + 75):
        for _ in range(25):
            a = rng.randrange(0, modulus)
            b = rng.randrange(0, modulus)
            e = rng.randrange(0, 1 << 300)
            assert py.powmod(a, e, modulus) == gm.powmod(a, e, modulus)
            assert py.mulmod(a, b, modulus) == gm.mulmod(a, b, modulus)
            try:
                expected = py.invert(a, modulus)
            except ValueError:
                with pytest.raises(ValueError):
                    gm.invert(a, modulus)
            else:
                assert gm.invert(a, modulus) == expected
            assert isinstance(gm.powmod(a, e, modulus), int)


@pytest.mark.skipif(not GMPY2_AVAILABLE, reason="gmpy2 not installed")
def test_gmpy2_kernels_match_python_kernels():
    """Fixed-base tables and multi_exp built under gmpy2 return the
    same plain ints as under the python backend."""
    rng = random.Random(17)
    exps = [rng.randrange(0, 1 << 256) for _ in range(8)]
    pairs = [(rng.randrange(2, P), rng.randrange(0, 1 << 256))
             for _ in range(6)]
    backend.set_backend("python")
    table_py = [FixedBaseTable(5, P, 256).pow(e) for e in exps]
    multi_py = multi_exp(pairs, P)
    backend.set_backend("gmpy2")
    assert [FixedBaseTable(5, P, 256).pow(e) for e in exps] == table_py
    assert multi_exp(pairs, P) == multi_py
    assert isinstance(multi_exp(pairs, P), int)


# -- fixed-base windowed exponentiation ---------------------------------------

def test_fixed_base_table_matches_pow():
    rng = random.Random(29)
    for window in (2, 4, 8):
        table = FixedBaseTable(3, P, 256, window=window)
        for exponent in [0, 1, 2, (1 << 256) - 1] + [
            rng.randrange(0, 1 << 256) for _ in range(40)
        ]:
            assert table.pow(exponent) == pow(3, exponent, P)


def test_fixed_base_table_overflow_falls_back():
    table = FixedBaseTable(3, P, max_bits=64)
    big = 1 << 200  # beyond the table's range: plain powmod fallback
    assert table.pow(big) == pow(3, big, P)


def test_fixed_base_table_rejects_negative_exponent():
    table = FixedBaseTable(3, P, 64)
    with pytest.raises(ValueError):
        table.pow(-1)


def test_fixed_base_table_rejects_bad_shape():
    with pytest.raises(ValueError):
        FixedBaseTable(3, 0, 64)
    with pytest.raises(ValueError):
        FixedBaseTable(3, P, 0)
    with pytest.raises(ValueError):
        FixedBaseTable(3, P, 64, window=0)


def test_fixed_base_entries_accounting():
    table = FixedBaseTable(3, P, 256, window=8)
    assert table.entries == (256 // 8) * (1 << 8)


def test_fixed_base_cache_builds_on_second_sighting():
    clear_fixed_base_cache()
    first = fixed_base(7, P, 256)
    assert not isinstance(first, FixedBaseTable)  # one-shot: no build
    assert first.pow(12345) == pow(7, 12345, P)
    second = fixed_base(7, P, 256)
    assert isinstance(second, FixedBaseTable)
    assert second.pow(12345) == pow(7, 12345, P)
    # Third sighting returns the cached table object itself.
    assert fixed_base(7, P, 256) is second


def test_fixed_base_warm_builds_immediately():
    clear_fixed_base_cache()
    table = fixed_base(11, P, 256, warm=True)
    assert isinstance(table, FixedBaseTable)
    stats = fixed_base_cache_stats()
    assert stats["tables"] == 1
    assert stats["entries"] == table.entries


def test_fixed_base_cache_is_lru_bounded():
    clear_fixed_base_cache()
    for base in range(2, 2 + backend._FB_TABLE_CAP + 10):
        fixed_base(base, P, 32, warm=True)
    assert fixed_base_cache_stats()["tables"] == backend._FB_TABLE_CAP


def test_set_backend_clears_fixed_base_cache():
    fixed_base(13, P, 64, warm=True)
    assert fixed_base_cache_stats()["tables"] >= 1
    backend.set_backend("python")
    assert fixed_base_cache_stats()["tables"] == 0


# -- simultaneous multi-exponentiation ----------------------------------------

def test_multi_exp_matches_pow_product():
    rng = random.Random(31)
    for modulus in (P, COMPOSITE):
        for count in (1, 2, 3, 7, 20):
            pairs = [
                (rng.randrange(0, modulus), rng.randrange(0, 1 << 384))
                for _ in range(count)
            ]
            expected = 1
            for base, exponent in pairs:
                expected = expected * pow(base, exponent, modulus) % modulus
            assert multi_exp(pairs, modulus) == expected


def test_multi_exp_unreduced_exponents():
    """The RLC check feeds exponents far beyond the group order; the
    kernel must not reduce them."""
    pairs = [(3, P * P + 12345), (5, 2 * P + 7)]
    expected = pow(3, P * P + 12345, P) * pow(5, 2 * P + 7, P) % P
    assert multi_exp(pairs, P) == expected


def test_multi_exp_edge_cases():
    assert multi_exp([], P) == 1
    assert multi_exp([], 1) == 0  # 1 mod 1
    assert multi_exp([(5, 0), (7, 0)], P) == 1  # zero exponents skipped
    assert multi_exp([(5, 3)], P) == pow(5, 3, P)
    with pytest.raises(ValueError):
        multi_exp([(5, -1)], P)
    with pytest.raises(ValueError):
        multi_exp([(5, 3)], 0)


def test_module_level_powmod_dispatch():
    backend.set_backend("python")
    assert powmod(3, 20, P) == pow(3, 20, P)
