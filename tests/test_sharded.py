"""Sharded front-end tests: partitioning, dispatch equivalence,
cross-shard escalation (fail-closed), and per-shard crash recovery.

The load-bearing guarantees pinned here:

* one shard's decision/digest stream is identical to a standalone
  ``PReVer`` fed the same substream (so sharding is an invisible
  scale-out, not a semantics change);
* a single-shard ``ShardedPReVer`` reproduces the *golden* roots and
  WAL bytes of the pre-refactor monolith (tests/test_pipeline_stages);
* serial and process dispatch agree on every decision and digest;
* cross-shard constraints without an RC2 federated verifier are
  refused, and escalation rejections never touch a shard's ledger;
* after a crash — simulated at every injected crash point, and a real
  SIGKILL — per-shard recovery reproduces every shard root and the
  combined root-of-roots.
"""

import functools
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.common.errors import PReVerError
from repro.core.framework import PReVer
from repro.core.federated import MPCVerifier, TokenVerifier
from repro.core.sharded import ShardedPReVer, ShardPlan, ShardSpec
from repro.crypto.merkle import MerkleTree
from repro.database.engine import Database
from repro.database.schema import ColumnType, TableSchema
from repro.durability import Durability, SimulatedCrash
from repro.durability.policy import CRASH_POINTS
from repro.model.constraints import (
    AggregateSpec,
    Comparison,
    Constraint,
    ConstraintKind,
    upper_bound_regulation,
)
from repro.model.update import Update, UpdateOperation

from tests.test_pipeline_stages import (
    GOLDEN,
    build_plaintext,
    golden_stream,
    wal_sha256,
)


# -- deterministic two-shard topology ----------------------------------------

TABLES = {"s0": "orders", "s1": "payments"}


def shard_db(name, table):
    db = Database(name)
    db.create_table(
        TableSchema.build(
            table,
            [("id", ColumnType.INT), ("who", ColumnType.TEXT),
             ("amount", ColumnType.INT)],
            primary_key=["id"],
        )
    )
    return db


def build_shard(name, table, state_dir=None, crash_after=None):
    """Module-level (picklable) builder for one shard's framework."""
    durability = None
    if state_dir is not None:
        durability = Durability.wal(os.path.join(state_dir, name))
        if crash_after is not None:
            durability = durability.with_crash_after(crash_after)
    framework = PReVer([shard_db(name, table)], durability=durability)
    template = upper_bound_regulation("cap", table, "amount", 50, ["who"])
    framework.register_constraint(Constraint(
        name="cap", kind=ConstraintKind.INTERNAL,
        aggregate=template.aggregate, comparison=template.comparison,
        bound=50, tables=(table,), constraint_id=f"cst-{name}-cap",
    ))
    return framework


def two_shard_specs(state_dir=None, crash_after=None):
    return [
        ShardSpec(name, (table,), functools.partial(
            build_shard, name, table,
            state_dir=state_dir, crash_after=crash_after,
        ))
        for name, table in sorted(TABLES.items())
    ]


def sharded_stream(n=12, offset=0, who="alice"):
    """Deterministic updates alternating between the two tables; per
    shard the amounts trip the 50-cap after two accepts per ``who``."""
    stream = []
    for i in range(offset, offset + n):
        table = TABLES["s0"] if i % 2 == 0 else TABLES["s1"]
        stream.append(Update(
            table=table, operation=UpdateOperation.INSERT,
            payload={"id": i, "who": who, "amount": 20},
            update_id=f"sh-{i:04d}",
        ))
    return stream


def substream(stream, table):
    return [u for u in stream if u.table == table]


# -- plan validation (fail-closed partitioning) ------------------------------


def test_plan_rejects_overlapping_tables():
    specs = [
        ShardSpec("a", ("t1", "t2"), lambda: None),
        ShardSpec("b", ("t2",), lambda: None),
    ]
    with pytest.raises(PReVerError, match="claimed by shards"):
        ShardPlan(specs)


def test_plan_rejects_duplicate_names_and_empty_shards():
    with pytest.raises(PReVerError, match="duplicate shard names"):
        ShardPlan([ShardSpec("a", ("t1",), lambda: None),
                   ShardSpec("a", ("t2",), lambda: None)])
    with pytest.raises(PReVerError, match="owns no tables"):
        ShardPlan([ShardSpec("a", (), lambda: None)])
    with pytest.raises(PReVerError, match="at least one shard"):
        ShardPlan([])


def test_unknown_table_fails_whole_batch_before_dispatch():
    sharded = ShardedPReVer(two_shard_specs())
    good = sharded_stream(2)
    bad = Update(table="nowhere", operation=UpdateOperation.INSERT,
                 payload={"id": 1, "who": "x", "amount": 1},
                 update_id="sh-bad")
    with pytest.raises(PReVerError, match="no shard owns"):
        sharded.submit_many(good + [bad])
    # Fail-before-mutate: nothing reached any shard.
    assert all(d.size == 0 for d in sharded.shard_digests().values())
    sharded.close()


def test_unknown_dispatch_mode_rejected():
    with pytest.raises(PReVerError, match="unknown dispatch"):
        ShardedPReVer(two_shard_specs(), dispatch="threads")


# -- shard == standalone substream equivalence -------------------------------


def test_each_shard_equals_standalone_framework_on_its_substream():
    stream = sharded_stream(12)
    sharded = ShardedPReVer(two_shard_specs())
    results = sharded.submit_many(stream)

    for name, table in TABLES.items():
        standalone = build_shard(name, table)
        solo_results = standalone.submit_many(substream(stream, table))
        shard_digest = sharded.shard_digests()[name]
        assert shard_digest.root == standalone.ledger.digest().root
        sharded_sub = [r for r in results if r.shard == name]
        assert len(sharded_sub) == len(solo_results)
        for a, b in zip(sharded_sub, solo_results):
            assert (a.accepted, a.applied, a.ledger_sequence) == \
                (b.accepted, b.applied, b.ledger_sequence)
    sharded.close()


def test_root_of_roots_is_merkle_over_shard_roots():
    sharded = ShardedPReVer(two_shard_specs())
    sharded.submit_many(sharded_stream(8))
    digest = sharded.digest()
    assert digest.root == MerkleTree(list(digest.shard_roots)).root()
    assert digest.shard_roots == tuple(
        d.root for d in sharded.shard_digests().values()
    )
    sharded.close()


@pytest.mark.parametrize("path", ["sequential", "batched"])
def test_single_shard_front_end_reproduces_monolith_goldens(path, tmp_path):
    """A one-shard ShardedPReVer is byte-identical to the pre-refactor
    framework: same golden ledger root and same golden WAL bytes."""
    state = str(tmp_path)
    spec = ShardSpec("only", ("events",), functools.partial(
        build_plaintext, durability=Durability.wal(state)
    ))
    sharded = ShardedPReVer([spec])
    stream = golden_stream()
    if path == "sequential":
        for update in stream:
            sharded.submit(update)
    else:
        sharded.submit_many(stream[:8])
        sharded.submit_many(stream[8:])
    sharded.close()
    golden = GOLDEN[("plaintext", path)]
    assert sharded.shard_digests()["only"].root.hex() == golden["root"]
    assert wal_sha256(state) == golden["wal_sha256"]
    # With one shard the root-of-roots is the Merkle tree over one leaf.
    assert sharded.digest().root == MerkleTree(
        [bytes.fromhex(golden["root"])]
    ).root()


# -- dispatch equivalence ----------------------------------------------------


def test_serial_and_process_dispatch_agree():
    stream = sharded_stream(12)
    roots, decisions = {}, {}
    for dispatch in ("serial", "process"):
        sharded = ShardedPReVer(two_shard_specs(), dispatch=dispatch)
        results = sharded.submit_many(stream)
        single = sharded.submit(Update(
            table=TABLES["s0"], operation=UpdateOperation.INSERT,
            payload={"id": 900, "who": "bob", "amount": 10},
            update_id="sh-one",
        ))
        assert single.applied and single.shard == "s0"
        decisions[dispatch] = [(r.shard, r.accepted, r.applied,
                                r.ledger_sequence) for r in results]
        roots[dispatch] = sharded.digest().root
        report = sharded.throughput_report()
        assert report["combined"]["updates"] == len(stream) + 1
        sharded.close()
    assert decisions["serial"] == decisions["process"]
    assert roots["serial"] == roots["process"]


# -- cross-shard constraints: fail-closed escalation -------------------------


def spanning_count_constraint(bound=3):
    """COUNT over both shards' tables — no single shard can check it."""
    return Constraint(
        name="global-count", kind=ConstraintKind.INTERNAL,
        aggregate=AggregateSpec(func="COUNT", column=None),
        comparison=Comparison.LE, bound=bound,
        tables=(TABLES["s0"], TABLES["s1"]),
        constraint_id="cst-global-count",
    )


def test_cross_shard_without_verifier_is_refused():
    sharded = ShardedPReVer(two_shard_specs())
    with pytest.raises(PReVerError, match="needs an RC2 federated verifier"):
        sharded.register_cross_shard_constraint(spanning_count_constraint())
    sharded.close()


def test_single_shard_constraint_must_go_to_its_shard():
    sharded = ShardedPReVer(two_shard_specs())
    local = Constraint(
        name="local", kind=ConstraintKind.INTERNAL,
        aggregate=spanning_count_constraint().aggregate,
        comparison=Comparison.LE, bound=3, tables=(TABLES["s0"],),
        constraint_id="cst-local",
    )
    with pytest.raises(PReVerError, match="register it there"):
        sharded.register_cross_shard_constraint(
            local, TokenVerifier(spanning_count_constraint())
        )
    sharded.close()


def test_unsupported_cross_shard_verifier_is_refused():
    sharded = ShardedPReVer(two_shard_specs())
    with pytest.raises(PReVerError, match="unsupported cross-shard verifier"):
        sharded.register_cross_shard_constraint(
            spanning_count_constraint(), verifier=object()
        )
    sharded.close()


def test_mpc_escalation_needs_in_process_databases():
    sharded = ShardedPReVer(two_shard_specs(), dispatch="process")
    constraint = spanning_count_constraint()
    mpc = MPCVerifier(
        [shard_db("a", TABLES["s0"]), shard_db("b", TABLES["s0"])],
        constraint,
    )
    with pytest.raises(PReVerError, match="needs them in-process"):
        sharded.register_cross_shard_constraint(constraint, mpc)
    sharded.close()


def test_token_escalation_rejects_over_budget_and_anchors_coordinator_side():
    """A global COUNT<=3 budget enforced by token spending: the fourth
    update is rejected coordinator-side, anchored on the escalation
    ledger, and never reaches its home shard."""
    constraint = spanning_count_constraint(bound=3)
    sharded = ShardedPReVer(two_shard_specs())
    sharded.register_cross_shard_constraint(
        constraint, TokenVerifier(constraint)
    )
    stream = [Update(
        table=TABLES["s0"] if i % 2 == 0 else TABLES["s1"],
        operation=UpdateOperation.INSERT,
        payload={"id": i, "who": "alice", "amount": 1},
        update_id=f"tok-{i}", producers=["alice"],
    ) for i in range(5)]
    results = sharded.submit_many(stream)
    assert [r.applied for r in results] == [True, True, True, False, False]
    rejected = [r for r in results if not r.applied]
    assert all(r.shard is None for r in rejected)
    assert all(
        r.outcome.failed_constraint == "cst-global-count" for r in rejected
    )
    # Rejections are anchored on the coordinator's escalation ledger...
    assert len(sharded.escalation_ledger) == 2
    history = [e.payload for e in sharded.escalation_ledger.entries()]
    assert all(p["scope"] == "cross-shard" for p in history)
    # ...and the shard ledgers saw only the accepted substreams.
    clean = ShardedPReVer(two_shard_specs())
    clean.submit_many(stream[:3])
    assert sharded.shard_digests()["s0"].root == \
        clean.shard_digests()["s0"].root
    assert sharded.shard_digests()["s1"].root == \
        clean.shard_digests()["s1"].root
    acceptance = sharded.acceptance_rate()
    assert acceptance == pytest.approx(3 / 5)
    sharded.close()
    clean.close()


# -- per-shard durability and recovery ---------------------------------------


def durable_dir(tmp_path):
    return str(tmp_path / "shards")


def test_sharded_recover_replays_every_shard(tmp_path):
    state = durable_dir(tmp_path)
    sharded = ShardedPReVer(two_shard_specs(state_dir=state))
    sharded.submit_many(sharded_stream(8))
    roots_before = {n: d.root for n, d in sharded.shard_digests().items()}
    combined_before = sharded.digest().root
    sharded.close()

    recovered = ShardedPReVer(two_shard_specs(state_dir=state))
    reports = recovered.recover()
    assert set(reports) == {"s0", "s1"}
    assert all(r.verified_against_anchor for r in reports.values())
    assert {n: d.root for n, d in recovered.shard_digests().items()} == \
        roots_before
    assert recovered.digest().root == combined_before
    # The recovered front-end keeps serving with the same decisions.
    follow_up = recovered.submit(Update(
        table=TABLES["s0"], operation=UpdateOperation.INSERT,
        payload={"id": 500, "who": "carol", "amount": 10},
        update_id="sh-follow",
    ))
    assert follow_up.applied
    recovered.close()


@pytest.mark.parametrize("point", CRASH_POINTS)
def test_sharded_crash_at_every_point_recovers_shard_roots(tmp_path, point):
    """Simulated crash in the first-dispatched shard (s0) mid-batch:
    recovery lands every shard on its last durable anchor, and the
    root-of-roots is reproduced exactly."""
    state = durable_dir(tmp_path)
    sharded = ShardedPReVer(two_shard_specs(state_dir=state))
    sharded.submit_many(sharded_stream(6))
    roots_durable = {n: d.root for n, d in sharded.shard_digests().items()}
    sharded.close()

    crashing = ShardedPReVer(
        two_shard_specs(state_dir=state, crash_after=point)
    )
    crashing.recover()
    with pytest.raises(SimulatedCrash):
        crashing.submit_many(sharded_stream(6, offset=100, who="bob"))
    s0_at_crash = crashing.shard_digests()["s0"].root

    recovered = ShardedPReVer(two_shard_specs(state_dir=state))
    reports = recovered.recover()
    assert all(r.verified_against_anchor for r in reports.values())
    roots_after = {n: d.root for n, d in recovered.shard_digests().items()}
    if point == "anchor_marker":
        # s0's batch became durable before the crash.
        assert roots_after["s0"] == s0_at_crash
    else:
        assert roots_after["s0"] == roots_durable["s0"]
    # s1 was never dispatched (s0 crashed first): its root is untouched.
    assert roots_after["s1"] == roots_durable["s1"]
    expected = MerkleTree([roots_after["s0"], roots_after["s1"]]).root()
    assert recovered.digest().root == expected
    recovered.close()


@pytest.mark.parametrize("point", CRASH_POINTS)
def test_sharded_real_sigkill_recovers_every_root(tmp_path, point):
    """Not simulated: a child running a ShardedPReVer SIGKILLs itself
    at an injected crash point mid-batch; the parent recovers every
    shard from what physically reached disk and reproduces the
    root-of-roots."""
    state = durable_dir(tmp_path)
    roots_path = str(tmp_path / "durable_roots")
    child_script = textwrap.dedent(f"""
        import os, signal, sys
        sys.path.insert(0, {os.path.abspath(
            os.path.join(os.path.dirname(__file__), "..", "src"))!r})
        sys.path.insert(0, {os.path.abspath(
            os.path.join(os.path.dirname(__file__), ".."))!r})
        from repro.core.framework import PReVer
        from tests.test_sharded import (
            ShardedPReVer, sharded_stream, two_shard_specs,
        )

        def _sigkill_crash_point(self, name):
            if self._crash_after == name:
                os.kill(os.getpid(), signal.SIGKILL)
        PReVer._crash_point = _sigkill_crash_point

        sharded = ShardedPReVer(
            two_shard_specs(state_dir={state!r}, crash_after={point!r})
        )
        # First batch is fully durable: crash points only fire when
        # _crash_after is set, and the kill hook replaces the raise, so
        # arm it only for the second batch.
        for shard in sharded.shards:
            shard.framework._crash_after = None
        sharded.submit_many(sharded_stream(6))
        with open({roots_path!r}, "w") as handle:
            for name, digest in sorted(sharded.shard_digests().items()):
                handle.write(digest.root.hex() + "\\n")
        for shard in sharded.shards:
            shard.framework._crash_after = {point!r}
        sharded.submit_many(sharded_stream(6, offset=100, who="bob"))
        raise SystemExit("crash point never fired")
    """)
    process = subprocess.Popen([sys.executable, "-c", child_script])
    deadline = time.time() + 120
    while process.poll() is None and time.time() < deadline:
        time.sleep(0.05)
    if process.poll() is None:
        process.kill()
        process.wait()
        pytest.fail("child did not die at its crash point")
    assert process.returncode == -signal.SIGKILL, \
        f"child exited {process.returncode}, expected SIGKILL"
    durable_roots = {}
    with open(roots_path) as handle:
        for name, line in zip(sorted(TABLES), handle):
            durable_roots[name] = bytes.fromhex(line.strip())

    recovered = ShardedPReVer(two_shard_specs(state_dir=state))
    reports = recovered.recover()
    assert all(r.verified_against_anchor for r in reports.values())
    roots_after = {n: d.root for n, d in recovered.shard_digests().items()}
    # s1 never saw the second batch (s0 is dispatched first and died).
    assert roots_after["s1"] == durable_roots["s1"]
    if point == "anchor_marker":
        # s0's second batch was durable: it must replay on top.
        assert roots_after["s0"] != durable_roots["s0"]
        reference = build_shard("s0", TABLES["s0"])
        reference.submit_many(substream(sharded_stream(6), TABLES["s0"]))
        reference.submit_many(
            substream(sharded_stream(6, offset=100, who="bob"), TABLES["s0"])
        )
        assert roots_after["s0"] == reference.ledger.digest().root
    else:
        assert roots_after["s0"] == durable_roots["s0"]
    expected = MerkleTree([roots_after["s0"], roots_after["s1"]]).root()
    assert recovered.digest().root == expected
    # And it serves again.
    assert recovered.submit(Update(
        table=TABLES["s1"], operation=UpdateOperation.INSERT,
        payload={"id": 700, "who": "dave", "amount": 5},
        update_id="sh-after",
    )).applied
    recovered.close()
