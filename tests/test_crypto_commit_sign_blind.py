"""Pedersen commitments, Schnorr signatures, RSA + blind signatures."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import IntegrityError
from repro.crypto.blind import BlindClient, BlindSignatureError, BlindSigner
from repro.crypto.commitments import PedersenCommitter
from repro.crypto.rsa import RSAError, generate_rsa_keypair
from repro.crypto.signatures import SchnorrSigner, SchnorrVerifier


# -- Pedersen ----------------------------------------------------------------

def test_commit_verify_roundtrip(committer):
    c, r = committer.commit(12345)
    assert committer.verify(c, 12345, r)


def test_wrong_opening_rejected(committer):
    c, r = committer.commit(10)
    assert not committer.verify(c, 11, r)
    assert not committer.verify(c, 10, r + 1)
    with pytest.raises(IntegrityError):
        committer.open_or_raise(c, 11, r)


def test_hiding_same_message_different_commitments(committer):
    c1, _ = committer.commit(7)
    c2, _ = committer.commit(7)
    assert c1.value != c2.value


@given(a=st.integers(min_value=0, max_value=10**6),
       b=st.integers(min_value=0, max_value=10**6))
@settings(max_examples=15, deadline=None)
def test_homomorphic_combination(committer, a, b):
    ca, ra = committer.commit(a)
    cb, rb = committer.commit(b)
    combined = committer.combine(ca, cb)
    assert committer.verify(combined, a + b, (ra + rb) % committer.group.q)


def test_scale(committer):
    c, r = committer.commit(5)
    scaled = committer.scale(c, 3)
    assert committer.verify(scaled, 15, 3 * r % committer.group.q)


def test_direct_multiplication_forbidden(committer):
    c, _ = committer.commit(1)
    with pytest.raises(TypeError):
        c * c


# -- Schnorr signatures --------------------------------------------------------

def test_sign_verify(group):
    signer = SchnorrSigner(group)
    sig = signer.sign(b"message")
    assert signer.verifier().verify(b"message", sig)


def test_tampered_message_rejected(group):
    signer = SchnorrSigner(group)
    sig = signer.sign(b"message")
    assert not signer.verifier().verify(b"messagE", sig)


def test_wrong_key_rejected(group):
    signer = SchnorrSigner(group)
    other = SchnorrSigner(group)
    sig = signer.sign(b"m")
    assert not other.verifier().verify(b"m", sig)


def test_sign_structured_object(group):
    signer = SchnorrSigner(group)
    obj = {"table": "t", "payload": {"x": 1}}
    sig = signer.sign_obj(obj)
    assert signer.verifier().verify_obj(obj, sig)
    assert not signer.verifier().verify_obj({"table": "t", "payload": {"x": 2}}, sig)


def test_signature_commitment_must_be_group_member(group):
    signer = SchnorrSigner(group)
    sig = signer.sign(b"m")
    from repro.crypto.signatures import SchnorrSignature

    forged = SchnorrSignature(commitment=group.p - 1, response=sig.response)
    assert not signer.verifier().verify(b"m", forged)


# -- RSA / blind signatures -------------------------------------------------------

def test_rsa_sign_verify(rsa_keys):
    sig = rsa_keys.private_key.sign(b"doc")
    assert rsa_keys.public_key.verify(b"doc", sig)
    assert not rsa_keys.public_key.verify(b"other", sig)


def test_rsa_rejects_out_of_range(rsa_keys):
    with pytest.raises(RSAError):
        rsa_keys.private_key.sign_raw(rsa_keys.public_key.n)
    assert not rsa_keys.public_key.verify(b"doc", 0)


def test_blind_signature_roundtrip(rsa_keys):
    from repro.crypto.rsa import RSAKeyPair

    signer = BlindSigner(keypair=rsa_keys)
    client = BlindClient(signer.public_key)
    blinded = client.blind(b"token-serial-1")
    signature = client.unblind(signer.sign_blinded(blinded))
    assert signer.public_key.verify(b"token-serial-1", signature)


def test_blindness_signer_never_sees_message_hash(rsa_keys):
    """The blinded value must differ from the message's FDH — the
    signer's view is statistically independent of the message."""
    signer = BlindSigner(keypair=rsa_keys)
    client = BlindClient(signer.public_key)
    message = b"secret-serial"
    blinded = client.blind(message)
    assert blinded.blinded != signer.public_key.fdh(message)


def test_blind_client_single_flight(rsa_keys):
    signer = BlindSigner(keypair=rsa_keys)
    client = BlindClient(signer.public_key)
    client.blind(b"a")
    with pytest.raises(BlindSignatureError):
        client.blind(b"b")


def test_unblind_without_blind_raises(rsa_keys):
    client = BlindClient(rsa_keys.public_key)
    with pytest.raises(BlindSignatureError):
        client.unblind(12345)


def test_unblind_detects_bad_signer(rsa_keys):
    signer = BlindSigner(keypair=rsa_keys)
    client = BlindClient(signer.public_key)
    client.blind(b"x")
    with pytest.raises(BlindSignatureError):
        client.unblind(42)  # not a valid blind signature


def test_signature_counter(rsa_keys):
    signer = BlindSigner(keypair=rsa_keys)
    client = BlindClient(signer.public_key)
    signer.sign_blinded(client.blind(b"t"))
    assert signer.signatures_issued == 1
