"""Tables, indexes, the Database engine, and the transaction log."""

import pytest

from repro.database.engine import Database, DatabaseError
from repro.database.expr import col, lit
from repro.database.log import LogOp
from repro.database.schema import ColumnType, TableSchema
from repro.database.table import DuplicateKeyError, MissingRowError, Table


def schema():
    return TableSchema.build(
        "people",
        [("id", ColumnType.INT), ("city", ColumnType.TEXT),
         ("age", ColumnType.INT)],
        primary_key=["id"],
        indexes=["city"],
    )


def filled_table():
    table = Table(schema())
    table.insert({"id": 1, "city": "paris", "age": 30})
    table.insert({"id": 2, "city": "rome", "age": 40})
    table.insert({"id": 3, "city": "paris", "age": 50})
    return table


def test_insert_get_len():
    table = filled_table()
    assert len(table) == 3
    assert table.get((2,))["city"] == "rome"
    assert table.get((9,)) is None
    assert (1,) in table


def test_duplicate_key_rejected():
    table = filled_table()
    with pytest.raises(DuplicateKeyError):
        table.insert({"id": 1, "city": "x", "age": 1})


def test_upsert_replaces():
    table = filled_table()
    table.upsert({"id": 1, "city": "lyon", "age": 31})
    assert table.get((1,))["city"] == "lyon"
    assert len(table) == 3


def test_update_row_returns_images():
    table = filled_table()
    before, after = table.update_row((1,), {"age": 31})
    assert before["age"] == 30 and after["age"] == 31


def test_update_missing_row():
    with pytest.raises(MissingRowError):
        filled_table().update_row((99,), {"age": 1})


def test_update_key_collision():
    table = filled_table()
    with pytest.raises(DuplicateKeyError):
        table.update_row((1,), {"id": 2})


def test_update_can_move_key():
    table = filled_table()
    table.update_row((1,), {"id": 10})
    assert table.get((1,)) is None
    assert table.get((10,))["age"] == 30


def test_delete():
    table = filled_table()
    row = table.delete((2,))
    assert row["city"] == "rome"
    with pytest.raises(MissingRowError):
        table.delete((2,))


def test_indexed_lookup_and_maintenance():
    table = filled_table()
    assert {r["id"] for r in table.lookup("city", "paris")} == {1, 3}
    table.update_row((1,), {"city": "rome"})
    assert {r["id"] for r in table.lookup("city", "paris")} == {3}
    assert {r["id"] for r in table.lookup("city", "rome")} == {1, 2}
    table.delete((3,))
    assert table.lookup("city", "paris") == []


def test_unindexed_lookup_scans():
    table = filled_table()
    assert len(table.lookup("age", 40)) == 1


def test_scan_with_predicate():
    table = filled_table()
    rows = list(table.scan(col("age") > lit(35)))
    assert {r["id"] for r in rows} == {2, 3}


def test_scan_returns_copies():
    table = filled_table()
    row = next(table.scan())
    row["age"] = 999
    assert table.get((row["id"],))["age"] != 999


def test_aggregates():
    table = filled_table()
    assert table.aggregate(None, "COUNT") == 3
    assert table.aggregate("age", "SUM") == 120
    assert table.aggregate("age", "AVG") == 40
    assert table.aggregate("age", "MIN") == 30
    assert table.aggregate("age", "MAX") == 50
    assert table.aggregate("age", "SUM", col("city").eq(lit("paris"))) == 80


def test_aggregate_empty_and_errors():
    table = Table(schema())
    assert table.aggregate("age", "SUM") == 0
    assert table.aggregate("age", "AVG") is None
    with pytest.raises(Exception):
        table.aggregate(None, "SUM")
    with pytest.raises(Exception):
        table.aggregate("age", "MEDIAN")


# -- Database engine ----------------------------------------------------------

def make_db():
    db = Database("test")
    db.create_table(schema())
    return db


def test_database_logged_mutations():
    db = make_db()
    db.insert("people", {"id": 1, "city": "a", "age": 10}, update_id="u1")
    db.update("people", (1,), {"age": 11})
    db.delete("people", (1,))
    records = list(db.log.records())
    assert [r.op for r in records] == [LogOp.INSERT, LogOp.UPDATE, LogOp.DELETE]
    assert records[0].update_id == "u1"
    assert records[1].before["age"] == 10 and records[1].after["age"] == 11
    assert records[2].after is None


def test_database_duplicate_table():
    db = make_db()
    with pytest.raises(DatabaseError):
        db.create_table(schema())


def test_database_missing_table():
    with pytest.raises(DatabaseError):
        make_db().table("nope")


def test_select_projection():
    db = make_db()
    db.insert("people", {"id": 1, "city": "a", "age": 10})
    rows = db.select("people", columns=["city"])
    assert rows == [{"city": "a"}]


def test_group_by():
    db = make_db()
    for i, (city, age) in enumerate(
        [("a", 10), ("a", 20), ("b", 30)], start=1
    ):
        db.insert("people", {"id": i, "city": city, "age": age})
    groups = db.group_by("people", ["city"], "SUM", "age")
    assert groups == {("a",): 30, ("b",): 30}
    counts = db.group_by("people", ["city"], "COUNT")
    assert counts == {("a",): 2, ("b",): 1}


def test_join():
    db = make_db()
    db.create_table(
        TableSchema.build(
            "cities",
            [("city", ColumnType.TEXT), ("country", ColumnType.TEXT)],
            primary_key=["city"],
        )
    )
    db.insert("people", {"id": 1, "city": "paris", "age": 10})
    db.insert("people", {"id": 2, "city": "oslo", "age": 20})
    db.insert("cities", {"city": "paris", "country": "fr"})
    joined = db.join("people", "cities", "city", "city")
    assert len(joined) == 1
    assert joined[0]["country"] == "fr"


def test_log_arrival_times_track_clock():
    db = make_db()
    db.insert("people", {"id": 1, "city": "a", "age": 1})
    db.clock.advance(10)
    db.insert("people", {"id": 2, "city": "a", "age": 2})
    assert db.log.arrival_times() == [0.0, 10.0]
