"""Tokens (blind-signed budgets, double-spend) and the enclave simulator."""

import pytest

from repro.common.errors import PrivacyError
from repro.database.engine import Database
from repro.database.schema import ColumnType, TableSchema
from repro.model.constraints import upper_bound_regulation
from repro.model.update import Update, UpdateOperation
from repro.privacy.enclave import TrustedEnclaveSimulator
from repro.privacy.tokens import (
    DoubleSpendError,
    SpendRegistry,
    Token,
    TokenAuthority,
    TokenError,
    TokenWallet,
)


@pytest.fixture(scope="module")
def authority():
    return TokenAuthority(budget_per_period=10, rsa_bits=512)


def wallet(authority, owner="w"):
    return TokenWallet(owner, authority.public_key)


def test_issue_within_budget(authority):
    w = wallet(authority, "alice")
    assert w.request_tokens(authority, period=1, count=10) == 10
    assert w.balance(1) == 10


def test_budget_enforced_across_requests(authority):
    w = wallet(authority, "bob")
    w.request_tokens(authority, period=2, count=6)
    with pytest.raises(TokenError):
        w.request_tokens(authority, period=2, count=5)
    assert authority.issued_count("bob", 2) == 6


def test_budget_is_per_period(authority):
    w = wallet(authority, "carol")
    w.request_tokens(authority, period=3, count=10)
    w.request_tokens(authority, period=4, count=10)  # fresh period, fine
    assert w.balance(3) == 10 and w.balance(4) == 10


def test_take_fails_when_short(authority):
    w = wallet(authority, "dave")
    w.request_tokens(authority, period=5, count=2)
    with pytest.raises(TokenError):
        w.take(5, 3)


def test_spend_and_double_spend(authority):
    w = wallet(authority, "erin")
    w.request_tokens(authority, period=6, count=3)
    registry = SpendRegistry(authority.public_key)
    tokens = w.take(6, 2)
    for token in tokens:
        registry.spend(token, "uber")
    with pytest.raises(DoubleSpendError):
        registry.spend(tokens[0], "lyft")
    assert registry.total_spent(6) == 2
    assert len(registry.ledger) == 2


def test_forged_token_rejected(authority):
    registry = SpendRegistry(authority.public_key)
    forged = Token(serial="00" * 32, period=1, pseudonym="p", signature=12345)
    with pytest.raises(TokenError):
        registry.spend(forged, "uber")


def test_pseudonym_stable_within_period_rotates_across(authority):
    w = wallet(authority, "fred")
    assert w.pseudonym_for(1) == w.pseudonym_for(1)
    assert w.pseudonym_for(1) != w.pseudonym_for(2)


def test_pseudonyms_unlinkable_across_workers(authority):
    a, b = wallet(authority, "gina"), wallet(authority, "hank")
    assert a.pseudonym_for(1) != b.pseudonym_for(1)


def test_lower_bound_counting(authority):
    w = wallet(authority, "ivy")
    w.request_tokens(authority, period=7, count=5)
    registry = SpendRegistry(authority.public_key)
    for token in w.take(7, 4):
        registry.spend(token, "uber")
    pseudonym = w.pseudonym_for(7)
    assert registry.spend_count(7, pseudonym) == 4
    assert registry.check_lower_bound(7, pseudonym, 4)
    assert not registry.check_lower_bound(7, pseudonym, 5)


def test_token_unlinkability_serial_not_seen_by_authority(authority):
    """The authority blind-signs: it never sees serials, so the spend
    registry's serials cannot be correlated with issuance events."""
    w = wallet(authority, "judy")
    w.request_tokens(authority, period=8, count=1)
    token = w.take(8, 1)[0]
    # The authority's entire issuance record is (participant, count).
    assert authority.issued_count("judy", 8) == 1
    # Nothing in the authority object contains the serial.
    assert token.serial not in str(authority.__dict__)


# -- enclave --------------------------------------------------------------------

def enclave_setup(capacity=100):
    schema = TableSchema.build(
        "tasks",
        [("task_id", ColumnType.TEXT), ("worker", ColumnType.TEXT),
         ("hours", ColumnType.INT)],
        primary_key=["task_id"],
    )
    db = Database("d")
    db.create_table(schema)
    regulation = upper_bound_regulation("cap", "tasks", "hours", 40, ["worker"])
    enclave = TrustedEnclaveSimulator([regulation], epc_capacity=capacity)
    return db, enclave


def make_update(worker, hours, i=0):
    return Update(
        table="tasks", operation=UpdateOperation.INSERT,
        payload={"task_id": f"t{i}", "worker": worker, "hours": hours},
    )


def test_enclave_decisions_match_reference():
    db, enclave = enclave_setup()
    ok, _ = enclave.verify_update([db], make_update("w", 30), now=0.0)
    assert ok
    db.insert("tasks", {"task_id": "t0", "worker": "w", "hours": 30})
    bad, _ = enclave.verify_update([db], make_update("w", 11, i=1), now=0.0)
    assert not bad


def test_enclave_attestation_is_stable_and_binding():
    db, enclave = enclave_setup()
    _, measurement = enclave.verify_update([db], make_update("w", 1), now=0.0)
    assert measurement == enclave.attest()
    # A different constraint set yields a different measurement.
    other = TrustedEnclaveSimulator(
        [upper_bound_regulation("cap", "tasks", "hours", 41, ["worker"])]
    )
    assert other.attest() != enclave.attest()


def test_enclave_memory_is_sealed():
    _, enclave = enclave_setup()
    with pytest.raises(PrivacyError):
        enclave.read_sealed(("tasks", None))


def test_enclave_paging_penalty_models_scalability_limit():
    db, small = enclave_setup(capacity=2)
    db2, large = enclave_setup(capacity=1000)
    for i in range(20):
        small.verify_update([db], make_update(f"w{i}", 1, i=i), now=0.0)
        large.verify_update([db2], make_update(f"w{i}", 1, i=i), now=0.0)
    assert small.page_faults >= large.page_faults
    assert small.clock.now() >= large.clock.now()


def test_enclave_host_view_has_no_contents():
    db, enclave = enclave_setup()
    enclave.verify_update([db], make_update("secret-worker", 39), now=0.0)
    view = enclave.host_view()
    assert set(view) == {"ecalls", "page_faults", "elapsed", "measurement"}
    assert "secret-worker" not in str(view)
    # The measurement is a content-independent hash of the constraint
    # set — identical regardless of what updates were verified.
    db2, enclave2 = enclave_setup()
    enclave2.verify_update([db2], make_update("other", 7), now=0.0)
    # (constraint ids differ per instance, so compare structure only)
    assert set(enclave2.host_view()) == set(view)
