"""End-to-end tracing through the Figure-2 pipeline, consensus, and net.

The acceptance shape: a traced ``submit_many`` run yields one trace per
update with validate → verify → apply → anchor spans, trace IDs that
match the anchored ledger entries, a JSONL-serializable event log, and
audit spot checks that correlate back to pipeline traces.
"""

import pytest

from repro.consensus.paxos import PaxosCluster
from repro.consensus.pbft import PBFTCluster
from repro.core.contexts import single_private_database
from repro.core.framework import PReVer
from repro.database.engine import Database
from repro.database.schema import ColumnType, TableSchema
from repro.ledger.audit import LedgerAuditor
from repro.model.constraints import upper_bound_regulation
from repro.model.participants import DataProducer
from repro.model.update import Update, UpdateOperation
from repro.net.simnet import SimNetwork
from repro.obs.events import EventLog
from repro.obs.tracing import Tracer
from repro.parallel import SerialExecutor

STAGES = ["validate", "verify", "apply", "anchor"]


def build_db():
    database = Database("mgr")
    database.create_table(TableSchema.build(
        "emissions",
        [("id", ColumnType.INT), ("org", ColumnType.TEXT),
         ("co2", ColumnType.INT)],
        primary_key=["id"],
    ))
    return database


def make_update(i, co2=10, org="acme"):
    return Update(table="emissions", operation=UpdateOperation.INSERT,
                  payload={"id": i, "org": org, "co2": co2})


def traced_framework(engine=None, executor=None, **kwargs):
    tracer = Tracer()
    log = EventLog()
    tracer.add_sink(log)
    database = build_db()
    cap = upper_bound_regulation("cap", "emissions", "co2", 25, ["org"])
    if engine is None:
        framework = PReVer([database], tracer=tracer, **kwargs)
        framework.constraints.append(cap)
    else:
        framework = single_private_database(
            database, [cap], engine=engine, tracer=tracer, executor=executor
        )
    return framework, tracer, log


def stage_spans(tracer, trace_id):
    spans = {s.name: s for s in tracer.traces()[trace_id]}
    return spans


def test_submit_many_traces_every_update_through_all_stages():
    framework, tracer, log = traced_framework()
    # 25-cap: first two accepted (10 + 10), third rejected (30 total).
    results = framework.submit_many([make_update(i) for i in range(3)])
    assert [r.applied for r in results] == [True, True, False]
    for result in results:
        assert result.trace_id is not None
        spans = stage_spans(tracer, result.trace_id)
        for stage in STAGES + ["update"]:
            assert stage in spans, f"missing {stage} span"
            assert spans[stage].ended
        # Children hang off the root update span.
        root = spans["update"]
        assert all(spans[s].parent_id == root.span_id for s in STAGES)
    # Distinct updates get distinct traces.
    assert len({r.trace_id for r in results}) == 3


def test_trace_ids_match_ledger_entries():
    framework, tracer, log = traced_framework()
    results = framework.submit_many([make_update(i) for i in range(3)])
    for result in results:
        entry = framework.ledger.entry(result.ledger_sequence)
        assert entry.payload["trace_id"] == result.trace_id
    anchors = log.events("ledger_anchor")
    assert [a["trace_id"] for a in anchors] == [r.trace_id for r in results]
    assert all("digest" in a for a in anchors)


def test_rejected_update_trace_shape():
    framework, tracer, log = traced_framework()
    results = framework.submit_many([make_update(i) for i in range(3)])
    rejected = results[-1]
    spans = stage_spans(tracer, rejected.trace_id)
    assert spans["update"].status == "error"
    assert spans["verify"].status == "error"
    assert spans["verify"].attributes["failed_constraint"] is not None
    assert spans["apply"].status == "skipped"
    assert spans["anchor"].status == "ok"  # rejections are anchored too
    rejections = log.events("rejection")
    assert len(rejections) == 1
    assert rejections[0]["trace_id"] == rejected.trace_id
    verdicts = log.events("constraint_verdict")
    assert [v["accepted"] for v in verdicts] == [True, True, False]


def test_single_submit_traced_same_shape_as_batch():
    framework, tracer, log = traced_framework()
    result = framework.submit(make_update(0))
    spans = stage_spans(tracer, result.trace_id)
    assert set(STAGES) <= set(spans)
    assert framework.ledger.entry(0).payload["trace_id"] == result.trace_id


def test_unsigned_update_rejected_with_full_stage_shape():
    framework, tracer, log = traced_framework(require_signed_updates=True)
    result = framework.submit(make_update(0))
    assert not result.applied
    spans = stage_spans(tracer, result.trace_id)
    assert spans["validate"].status == "error"
    assert spans["validate"].attributes["reason"] == "unsigned update"
    assert spans["verify"].status == "skipped"
    assert spans["apply"].status == "skipped"
    assert spans["anchor"].ended


def test_signed_update_traced_validate_ok():
    framework, tracer, _ = traced_framework(require_signed_updates=True)
    producer = DataProducer("acme-reporter")
    result = framework.submit(make_update(0).sign_with(producer))
    assert result.applied
    assert stage_spans(tracer, result.trace_id)["validate"].status == "ok"


def test_duplicate_key_apply_failure_traced_as_error():
    framework, tracer, log = traced_framework()
    first = framework.submit(make_update(0, co2=1))
    assert first.applied
    second = framework.submit(make_update(0, co2=1))  # same primary key
    assert not second.applied
    spans = stage_spans(tracer, second.trace_id)
    assert spans["apply"].status == "error"
    assert "reason" in spans["apply"].attributes


def test_paillier_crypto_spans_nest_under_verify():
    # Pinned to the serial executor: this asserts the *inline* crypto
    # span nesting, which the parallel prepare-batch path deliberately
    # hoists out of the per-update verify span (covered by the
    # parallel.map span tests in test_parallel_exec.py).
    framework, tracer, log = traced_framework(engine="paillier",
                                              executor=SerialExecutor())
    result = framework.submit_many([make_update(0)])[0]
    spans = tracer.traces()[result.trace_id]
    by_name = {s.name: s for s in spans}
    assert "paillier.encrypt" in by_name
    assert "paillier.decrypt" in by_name
    verify = by_name["verify"]
    assert by_name["paillier.encrypt"].parent_id == verify.span_id
    assert by_name["paillier.decrypt"].parent_id == verify.span_id


def test_merkle_extension_span_recorded_per_batch():
    framework, tracer, log = traced_framework()
    framework.submit_many([make_update(i) for i in range(2)])
    extensions = tracer.spans_named("merkle.extend")
    assert len(extensions) == 1
    assert extensions[0].attributes["leaves"] == 2


def test_audit_spot_checks_correlate_by_trace_id():
    framework, tracer, log = traced_framework()
    results = framework.submit_many([make_update(i) for i in range(3)])
    auditor = LedgerAuditor("regulator", tracer=tracer)
    report = auditor.audit(framework.ledger, spot_check=3)
    assert report.ok
    checks = log.events("audit.entry_check")
    assert len(checks) == 3
    assert {c["trace_id"] for c in checks} == {r.trace_id for r in results}
    rounds = tracer.spans_named("audit.round")
    assert len(rounds) == 1
    assert rounds[0].attributes["outcome"] == "first_contact"


def test_event_log_serializes_to_jsonl(tmp_path):
    framework, tracer, log = traced_framework()
    framework.submit_many([make_update(i) for i in range(3)])
    path = tmp_path / "trace.jsonl"
    count = log.write(str(path))
    records = EventLog.read_jsonl(str(path))
    assert len(records) == count
    kinds = {r["kind"] for r in records}
    assert {"span_open", "span_close", "constraint_verdict",
            "ledger_anchor", "rejection"} <= kinds


def test_untraced_pipeline_unchanged():
    """The default no-op tracer leaves anchored payloads (and hence
    ledger digests) byte-identical to pre-observability runs."""
    database = build_db()
    framework = PReVer([database])
    framework.constraints.append(
        upper_bound_regulation("cap", "emissions", "co2", 25, ["org"])
    )
    results = framework.submit_many([make_update(i) for i in range(2)])
    assert all(r.trace_id is None for r in results)
    for entry in framework.ledger.entries():
        assert "trace_id" not in entry.payload


@pytest.mark.parametrize("engine", ["plaintext", "zkp", "enclave"])
def test_other_engines_trace_without_crypto_spans(engine):
    framework, tracer, _ = traced_framework(engine=engine)
    result = framework.submit_many([make_update(0)])[0]
    spans = stage_spans(tracer, result.trace_id)
    assert spans["verify"].attributes["engine"] == engine
    assert set(STAGES) <= set(spans)


# -- consensus + network tracing ------------------------------------------


def traced_network(**kwargs):
    tracer = Tracer()
    log = EventLog()
    tracer.add_sink(log)
    return SimNetwork(tracer=tracer, **kwargs), tracer, log


def test_network_hops_and_drops_become_events():
    net, tracer, log = traced_network(loss_rate=0.0)
    cluster = PaxosCluster(n=3, network=net)
    cluster.submit({"cmd": 1})
    cluster.run()
    hops = log.events("net.hop")
    assert hops, "message sends should emit net.hop events"
    assert {"src", "dst", "msg_kind", "latency"} <= set(hops[0])
    net.partition({cluster.names[0]}, set(cluster.names[1:]))
    cluster.submit({"cmd": 2})
    cluster.run()
    drops = log.events("net.drop")
    assert drops
    assert {d["reason"] for d in drops} == {"partition"}


def test_paxos_request_span_measures_decision_latency():
    net, tracer, log = traced_network()
    cluster = PaxosCluster(n=3, network=net)
    result = cluster.submit({"cmd": "x"})
    cluster.run()
    assert result.decided_at is not None
    spans = tracer.spans_named("paxos.request")
    assert len(spans) == 1
    assert spans[0].ended
    assert spans[0].duration == pytest.approx(
        result.decided_at - result.submitted_at
    )
    assert spans[0].attributes["slot"] == result.sequence


def test_pbft_request_span_and_view_change_events():
    net, tracer, log = traced_network()
    cluster = PBFTCluster(f=1, network=net, view_timeout=0.5)
    result = cluster.submit({"cmd": "y"})
    cluster.run()
    spans = tracer.spans_named("pbft.request")
    assert len(spans) == 1 and spans[0].ended
    assert spans[0].attributes["seq"] == result.sequence
    assert log.events("pbft.view_change") == []  # healthy primary

    # Crash the primary: the request times out and a view change fires.
    cluster.nodes[cluster.nodes[0].view % cluster.n].silence()
    cluster.submit({"cmd": "z"})
    cluster.run()
    assert log.events("pbft.view_change")
    assert log.events("pbft.new_view")


def test_paxos_election_span():
    net, tracer, log = traced_network()
    cluster = PaxosCluster(n=3, network=net)
    cluster.elect(1)
    elections = tracer.spans_named("paxos.election")
    assert len(elections) == 1
    assert elections[0].attributes["won"] is True
