"""Setup shim.

The canonical metadata lives in pyproject.toml; this file exists so the
package can be installed editable (``python setup.py develop``) in
offline environments whose pip lacks the ``wheel`` backend required for
PEP-660 editable installs.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
