"""Uniform result-table printing for the experiment benches."""


def print_table(title, header, rows):
    print(f"\n=== {title} ===")
    widths = [max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
              for i, h in enumerate(header)]
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
