"""E9 (Section 6): Paxos vs PBFT throughput/latency vs cluster size.

The comparison the paper explicitly prescribes for distributed PReVer
instantiations.  Measured in *simulated* time (protocol-level, host-
independent); wall time measures the simulator itself.  Shapes:
Paxos messages grow O(n), PBFT O(n^2); both keep latency at a few
network RTTs.
"""

import pytest

from repro.consensus.paxos import PaxosCluster
from repro.consensus.pbft import PBFTCluster
from repro.net.simnet import SimNetwork

from _report import print_table

COMMANDS = 30

# Replicas handle one message per 50us of simulated time, so the
# message-complexity gap (O(n) vs O(n^2)) turns into a throughput gap.
PER_MESSAGE_COST = 0.00005


def run_paxos(n):
    network = SimNetwork(per_message_cost=PER_MESSAGE_COST)
    cluster = PaxosCluster(n=n, network=network)
    for i in range(COMMANDS):
        cluster.submit({"op": i})
    cluster.run()
    return cluster.stats()


def run_pbft(f):
    network = SimNetwork(per_message_cost=PER_MESSAGE_COST)
    cluster = PBFTCluster(f=f, network=network, view_timeout=30.0)
    for i in range(COMMANDS):
        cluster.submit({"op": i})
    cluster.run()
    return cluster.stats()


@pytest.mark.parametrize("n", [3, 5, 9])
def test_paxos_simulation_cost(benchmark, n):
    stats = benchmark.pedantic(run_paxos, args=(n,), rounds=3, iterations=1)


@pytest.mark.parametrize("f", [1, 2])
def test_pbft_simulation_cost(benchmark, f):
    benchmark.pedantic(run_pbft, args=(f,), rounds=3, iterations=1)


def test_consensus_report(benchmark, capsys):
    rows = []

    def sweep():
        rows.clear()
        for n in (3, 5, 7, 9, 13):
            stats = run_paxos(n)
            rows.append([
                "paxos", n, stats.decided, f"{stats.messages:,}",
                f"{stats.mean_latency * 1e3:.2f}ms",
                f"{stats.p95_latency * 1e3:.2f}ms",
                f"{stats.throughput:,.0f}/s",
            ])
        for f in (1, 2, 3, 4):
            stats = run_pbft(f)
            rows.append([
                "pbft", 3 * f + 1, stats.decided, f"{stats.messages:,}",
                f"{stats.mean_latency * 1e3:.2f}ms",
                f"{stats.p95_latency * 1e3:.2f}ms",
                f"{stats.throughput:,.0f}/s",
            ])

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print_table(
            f"E9: consensus comparison ({COMMANDS} commands, sim-time, "
            f"50us/msg replica capacity)",
            ["protocol", "nodes", "decided", "messages", "mean lat",
             "p95 lat", "throughput"],
            rows,
        )
