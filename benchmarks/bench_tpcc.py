"""E12 (Section 6, TPC): TPC-C with and without the constraint layer.

The NEW-ORDER/PAYMENT mix on the raw substrate versus the same mix with
PReVer's regulated-update layer expressing the TPC-C consistency
conditions.  The delta is the price of regulation enforcement on a
standardized transactional workload.
"""

import pytest

from repro.core.framework import PReVer
from repro.database.engine import Database
from repro.database.expr import lit, update_field
from repro.model.constraints import Constraint, ConstraintKind
from repro.model.update import Update, UpdateOperation
from repro.workloads.tpcc import TPCCWorkload

from _report import print_table

TRANSACTIONS = 150


def run_raw():
    workload = TPCCWorkload(warehouses=2, items=50, seed=33)
    db = Database("tpcc-raw")
    workload.load(db)
    workload.run_mix(db, TRANSACTIONS)
    assert TPCCWorkload.check_consistency(db)
    return workload.stats


def run_regulated():
    """Same mix, but every stock decrement flows through a PReVer
    pipeline carrying the non-negative-stock constraint."""
    workload = TPCCWorkload(warehouses=2, items=50, seed=33)
    db = Database("tpcc-reg")
    workload.load(db)
    framework = PReVer([db])
    framework.register_constraint(Constraint(
        name="stock-non-negative", kind=ConstraintKind.INTERNAL,
        predicate=update_field("s_quantity") >= lit(0),
        tables=("stock",),
    ))
    # Run the mix; route each stock write through the framework.
    original_update = db.update

    def regulated_update(table, key, changes, update_id=None):
        if table == "stock":
            # Route through the pipeline; restore the raw update method
            # while the framework applies so it doesn't recurse back in.
            db.update = original_update
            try:
                result = framework.submit(Update(
                    table="stock", operation=UpdateOperation.MODIFY,
                    payload=changes, key=key,
                ))
            finally:
                db.update = regulated_update
            if not result.applied:
                raise AssertionError("constraint rejected a valid decrement")
            return changes
        return original_update(table, key, changes, update_id=update_id)

    db.update = regulated_update
    workload.run_mix(db, TRANSACTIONS)
    db.update = original_update
    assert TPCCWorkload.check_consistency(db)
    return workload.stats, framework


def test_tpcc_raw(benchmark):
    benchmark.pedantic(run_raw, rounds=3, iterations=1)


def test_tpcc_regulated(benchmark):
    benchmark.pedantic(run_regulated, rounds=3, iterations=1)


def test_tpcc_report(benchmark, capsys):
    import time

    rows = []

    def sweep():
        rows.clear()
        start = time.perf_counter()
        stats = run_raw()
        raw_time = time.perf_counter() - start
        rows.append(["raw substrate", f"{TRANSACTIONS / raw_time:,.0f} tx/s",
                     stats.new_orders, stats.payments, stats.rollbacks])
        start = time.perf_counter()
        stats, framework = run_regulated()
        reg_time = time.perf_counter() - start
        rows.append([
            "regulated (PReVer)", f"{TRANSACTIONS / reg_time:,.0f} tx/s",
            stats.new_orders, stats.payments, stats.rollbacks,
        ])
        rows.append([
            "overhead", f"{reg_time / raw_time:.2f}x", "-", "-",
            f"{len(framework.ledger)} anchored",
        ])

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print_table(
            f"E12: TPC-C mix, raw vs regulated ({TRANSACTIONS} txs)",
            ["configuration", "throughput", "new-orders", "payments",
             "rollbacks"],
            rows,
        )
