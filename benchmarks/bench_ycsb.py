"""E2 (Section 6, YCSB): private vs non-private single database.

Runs YCSB workloads A-F against the plain relational substrate, then
runs the write portion of YCSB-A through the PReVer pipeline with the
plaintext and Paillier engines.  Shape to observe: the read-heavy
workloads (B/C/D) are nearly free; the privacy layer multiplies the
cost of write-heavy workloads by the crypto factor measured in E3.
"""

import pytest

from repro.core.contexts import single_private_database
from repro.database.engine import Database
from repro.database.schema import ColumnType, TableSchema
from repro.model.constraints import upper_bound_regulation
from repro.model.update import Update, UpdateOperation
from repro.workloads.ycsb import WORKLOAD_MIXES, YCSBOperation, YCSBWorkload

from _report import print_table

KV_SCHEMA = TableSchema.build(
    "kv",
    [("key", ColumnType.INT), ("value", ColumnType.INT)],
    primary_key=["key"],
)

RECORDS = 500
OPERATIONS = 2000


def load_plain():
    workload = YCSBWorkload("A", RECORDS, OPERATIONS)
    db = Database("plain")
    db.create_table(KV_SCHEMA)
    for key, value in workload.initial_records():
        db.insert("kv", {"key": key, "value": value})
    return db


def run_ops(db, ops):
    for op in ops:
        if op.op is YCSBOperation.READ:
            db.table("kv").get((op.key,))
        elif op.op is YCSBOperation.UPDATE:
            db.update("kv", (op.key,), {"value": op.value})
        elif op.op is YCSBOperation.INSERT:
            # Upsert semantics so repeated benchmark rounds over the
            # same operation list stay valid.
            db.table("kv").upsert({"key": op.key, "value": op.value})
        elif op.op is YCSBOperation.SCAN:
            rows = db.table("kv").rows()
        elif op.op is YCSBOperation.RMW:
            row = db.table("kv").get((op.key,))
            if row is not None:
                db.update("kv", (op.key,), {"value": row["value"] + 1})


@pytest.mark.parametrize("letter", sorted(WORKLOAD_MIXES))
def test_ycsb_plain_database(benchmark, letter):
    db = load_plain()
    workload = YCSBWorkload(letter, RECORDS, OPERATIONS)
    ops = list(workload.operations())
    benchmark.pedantic(run_ops, args=(db, ops), rounds=3, iterations=1)


@pytest.mark.parametrize("engine", ["plaintext", "paillier"])
def test_ycsb_a_writes_through_pipeline(benchmark, engine):
    """The write half of YCSB-A as regulated updates."""
    workload = YCSBWorkload("A", RECORDS, 200, seed=4)
    writes = [op for op in workload.operations()
              if op.op is YCSBOperation.UPDATE][:100]

    def run():
        db = Database("mgr")
        db.create_table(KV_SCHEMA)
        regulation = upper_bound_regulation("cap", "kv", "value", 10**9,
                                            ["key"])
        framework = single_private_database(db, [regulation], engine=engine)
        for i, op in enumerate(writes):
            framework.submit(Update(
                table="kv", operation=UpdateOperation.INSERT,
                payload={"key": i, "value": op.value},
            ))

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_ycsb_report(benchmark, capsys):
    import time

    rows = []

    def sweep():
        rows.clear()
        for letter in sorted(WORKLOAD_MIXES):
            db = load_plain()
            ops = list(YCSBWorkload(letter, RECORDS, OPERATIONS).operations())
            start = time.perf_counter()
            run_ops(db, ops)
            elapsed = time.perf_counter() - start
            rows.append([
                letter,
                ", ".join(f"{k}:{v:.0%}" for k, v in
                          WORKLOAD_MIXES[letter].items()),
                f"{OPERATIONS / elapsed:,.0f} ops/s",
            ])

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print_table("E2: YCSB A-F on the plain substrate",
                    ["workload", "mix", "throughput"], rows)
