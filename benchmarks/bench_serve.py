"""Serving-tier load: sustained throughput and tail latency under
hundreds of concurrent closed-loop clients.

Boots a real ``PReVerServer`` (wire protocol, Schnorr session auth,
bounded admission, batching scheduler) and drives it with ``--clients``
simulated producers, each running a closed loop: connect, authenticate,
then submit updates one at a time, waiting for each decision (and
honouring RETRY backpressure) before sending the next.  Per-request
latency is measured client-side, so RETRY backoff is *included* — the
reported tail is what a producer actually experiences under
saturation.

After the run the served decision stream is **replayed in-process**:
the same update objects, ordered by their served ledger sequence, go
through one ``submit_many`` on a freshly built identical framework,
and the bench asserts every decision and the final anchored root are
identical — the serving tier is transport, not semantics.

Reported per row: sustained throughput (updates/s), client-observed
p50/p99 latency, RETRY count, batches and mean coalesced batch size.
Everything lands in ``BENCH_serve.json`` (``--out``).  Standalone:

    PYTHONPATH=src python benchmarks/bench_serve.py [--smoke]
        [--clients N] [--updates-per-client N] [--batch-window S]
        [--max-batch N] [--queue-limit N] [--durability {off,wal}]
        [--out PATH]
"""

import argparse
import asyncio
import json
import math
import tempfile
import time

from repro.core.contexts import single_private_database
from repro.database.engine import Database
from repro.database.schema import ColumnType, TableSchema
from repro.durability import Durability
from repro.model.constraints import upper_bound_regulation
from repro.model.participants import DataProducer
from repro.model.update import Update, UpdateOperation
from repro.serve.client import ServeClient
from repro.serve.server import PReVerServer

from _report import print_table

#: Per-org cap: with co2=30 per update the fourth update of every
#: producer is rejected, so the replay equality check covers both
#: decision branches, not just a stream of accepts.
CAP = 100
CO2 = 30


def build_framework(durability=None):
    db = Database("mgr")
    db.create_table(TableSchema.build(
        "emissions",
        [("id", ColumnType.INT), ("org", ColumnType.TEXT),
         ("co2", ColumnType.INT)],
        primary_key=["id"],
    ))
    regulation = upper_bound_regulation(
        "cap", "emissions", "co2", CAP, ["org"])
    # Deterministic id so the served framework and the in-process
    # replay anchor byte-identical decision records.
    regulation.constraint_id = "cst-serve-cap"
    return single_private_database(db, [regulation], engine="plaintext",
                                   durability=durability)


def make_updates(producer, n):
    return [
        Update(table="emissions", operation=UpdateOperation.INSERT,
               payload={"id": i, "org": producer.name, "co2": CO2},
               update_id=f"upd-{producer.name}-{i:05d}").sign_with(producer)
        for i in range(n)
    ]


def percentile(samples, pct):
    """Nearest-rank percentile of ``samples`` (0.0 when empty)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = math.ceil(pct / 100.0 * len(ordered))
    return ordered[min(len(ordered) - 1, max(0, rank - 1))]


async def run_load(framework, producers, updates_per_client, *,
                   batch_window, max_batch, queue_limit):
    """Drive the closed loop; returns (served_results, latencies, secs)."""
    server = PReVerServer(
        framework, batch_window=batch_window, max_batch=max_batch,
        queue_limit=queue_limit,
        producers={p.name: p.public_key for p in producers})
    await server.start()
    host, port = server.address
    latencies = []
    served = []

    async def one_client(producer):
        updates = make_updates(producer, updates_per_client)
        async with await ServeClient.connect(
                host, port, producer=producer) as client:
            for update in updates:
                start = time.perf_counter()
                result = await client.submit(update, retries=10_000)
                latencies.append(time.perf_counter() - start)
                served.append(result)
        return updates

    start = time.perf_counter()
    all_updates = await asyncio.gather(*[one_client(p) for p in producers])
    elapsed = time.perf_counter() - start
    await server.stop()
    updates_by_id = {u.update_id: u
                     for updates in all_updates for u in updates}
    return served, latencies, elapsed, updates_by_id


def assert_transport_transparency(framework, served, updates_by_id):
    """Replay the served stream in-process; decisions and root must match."""
    ordered = sorted(served, key=lambda r: r.ledger_sequence)
    replay = build_framework()
    replayed = replay.submit_many(
        [updates_by_id[r.update_id] for r in ordered])
    for served_result, replay_result in zip(ordered, replayed):
        assert served_result.update_id == replay_result.update.update_id
        assert served_result.accepted == replay_result.outcome.accepted, (
            f"served decision for {served_result.update_id} diverged")
        assert served_result.applied == replay_result.applied
    served_root = framework.ledger.digest().root
    replay_root = replay.ledger.digest().root
    assert served_root == replay_root, (
        "served and in-process anchored roots differ — the serving tier "
        "changed semantics")
    return served_root


def run_once(args, durability=None, label="serve"):
    framework = build_framework(durability=durability)
    producers = [DataProducer(f"org-{i:04d}") for i in range(args.clients)]
    served, latencies, elapsed, updates_by_id = asyncio.run(run_load(
        framework, producers, args.updates_per_client,
        batch_window=args.batch_window, max_batch=args.max_batch,
        queue_limit=args.queue_limit))
    total = args.clients * args.updates_per_client
    assert len(served) == total, f"{len(served)}/{total} decisions returned"
    root = assert_transport_transparency(framework, served, updates_by_id)
    framework.close()
    metrics = framework.metrics
    batches = metrics.counter_value("server.batches")
    return {
        "label": label,
        "clients": args.clients,
        "updates": total,
        "seconds": round(elapsed, 4),
        "throughput_ups": round(total / elapsed, 1),
        "p50_ms": round(percentile(latencies, 50) * 1e3, 3),
        "p99_ms": round(percentile(latencies, 99) * 1e3, 3),
        "retries": metrics.counter_value("server.retries"),
        "batches": batches,
        "mean_batch": round(total / batches, 1) if batches else 0.0,
        "accepted": sum(1 for r in served if r.applied),
        "rejected": sum(1 for r in served if not r.applied),
        "root": root.hex(),
        "root_equal": True,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="serving-tier closed-loop load benchmark")
    parser.add_argument("--clients", type=int, default=200,
                        help="simulated concurrent producers (default 200)")
    parser.add_argument("--updates-per-client", type=int, default=4)
    parser.add_argument("--batch-window", type=float, default=0.005,
                        help="coalescing window seconds (default 0.005)")
    parser.add_argument("--max-batch", type=int, default=256)
    parser.add_argument("--queue-limit", type=int, default=1024,
                        help="pending-update cap before RETRY (default 1024)")
    parser.add_argument("--durability", choices=["off", "wal"],
                        default="off",
                        help="wal = Durability.serving(): one group-commit "
                             "fsync per coalesced batch")
    parser.add_argument("--out", default="BENCH_serve.json")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: 200 clients x 2 updates")
    args = parser.parse_args(argv)
    if args.smoke:
        args.updates_per_client = 2

    rows = []
    if args.durability == "wal":
        with tempfile.TemporaryDirectory(prefix="bench-serve-") as state:
            rows.append(run_once(
                args, durability=Durability.serving(state),
                label="serve+wal"))
    else:
        rows.append(run_once(args, label="serve"))

    print_table(
        "serving tier: closed-loop load "
        f"({args.clients} clients x {args.updates_per_client} updates)",
        ["label", "updates", "ups", "p50 ms", "p99 ms", "retries",
         "batches", "mean batch", "root=="],
        [[r["label"], r["updates"], r["throughput_ups"], r["p50_ms"],
          r["p99_ms"], r["retries"], r["batches"], r["mean_batch"],
          r["root_equal"]] for r in rows])

    artifact = {
        "bench": "serve",
        "config": {k: v for k, v in vars(args).items() if k != "out"},
        "rows": rows,
    }
    with open(args.out, "w") as fh:
        json.dump(artifact, fh, indent=2, sort_keys=True)
    print(f"\nwrote {args.out}")


if __name__ == "__main__":
    main()
