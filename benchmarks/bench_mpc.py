"""E6 (RC2): MPC protocol cost vs. parties and bit width.

Reproduces the paper's "secure multi-party computations ... do not
scale" concern as a measured surface: communication rounds, messages,
and Beaver triples as functions of (parties, width).
"""

import pytest

from repro.privacy.mpc import MPCContext

from _report import print_table


def run_protocol(parties, width):
    context = MPCContext(parties=parties)
    context.verify_sum_upper_bound([3] * parties, bound=10**6, width=width)
    return context


@pytest.mark.parametrize("parties", [2, 4, 8])
def test_mpc_wall_time_vs_parties(benchmark, parties):
    benchmark.pedantic(run_protocol, args=(parties, 10), rounds=3,
                       iterations=1)


@pytest.mark.parametrize("width", [8, 16])
def test_mpc_wall_time_vs_width(benchmark, width):
    benchmark.pedantic(run_protocol, args=(3, width), rounds=3, iterations=1)


def test_mpc_cost_surface_report(benchmark, capsys):
    rows = []

    RTT = 0.002  # 2ms datacenter round trip

    def sweep():
        rows.clear()
        for parties in (2, 4, 8):
            for width in (8, 16):
                context = run_protocol(parties, width)
                rounds = context.metrics.counter("mpc.rounds").count
                rows.append([
                    parties, width, rounds,
                    f"{context.metrics.counter('mpc.messages').total:,.0f}",
                    context.dealer.triples_dealt,
                    f"{rounds * RTT * 1e3:,.0f}ms",
                ])

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print_table(
            "E6: MPC cost surface (one regulation check)",
            ["parties", "bit width", "rounds", "messages", "triples",
             "latency @2ms RTT"],
            rows,
        )
