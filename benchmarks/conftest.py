"""Shared benchmark fixtures and reporting helpers.

Every bench file maps to one experiment in DESIGN.md's per-experiment
index (E1-E14).  Benches print their result tables to stdout (run with
``pytest benchmarks/ --benchmark-only -s`` to see them inline); the
shapes are recorded in EXPERIMENTS.md.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from repro.crypto.paillier import generate_paillier_keypair
from repro.crypto.rsa import generate_rsa_keypair


@pytest.fixture(scope="session")
def paillier_keys():
    return generate_paillier_keypair(256)


@pytest.fixture(scope="session")
def rsa_keys():
    return generate_rsa_keypair(512)
