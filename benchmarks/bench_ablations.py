"""Ablations for the design choices DESIGN.md calls out.

* A1 — Paillier CRT decryption vs the textbook path (the standard ~4x
  optimization the implementation carries);
* A2 — blockchain block size: batching amortizes consensus cost but
  delays finality;
* A3 — centralized vs distributed token issuance (the Separ
  future-work feature): the price of removing the trusted party;
* A4 — auditor strategy: incremental consistency proofs vs naive full
  rehash of the journal.
"""

import pytest

from repro.chain.blockchain import PermissionedBlockchain
from repro.crypto.merkle import MerkleTree
from repro.ledger.audit import LedgerAuditor
from repro.ledger.central import CentralLedger
from repro.privacy.threshold_tokens import DistributedTokenAuthority
from repro.privacy.tokens import TokenAuthority, TokenWallet

from _report import print_table


# -- A1: Paillier decryption paths ------------------------------------------------

def test_paillier_decrypt_plain(benchmark, paillier_keys):
    ciphertext = paillier_keys.public_key.encrypt(123456)
    benchmark.pedantic(
        lambda: paillier_keys.private_key.decrypt(ciphertext),
        rounds=10, iterations=3,
    )


def test_paillier_decrypt_crt(benchmark, paillier_keys):
    ciphertext = paillier_keys.public_key.encrypt(123456)
    benchmark.pedantic(
        lambda: paillier_keys.private_key.decrypt_crt(ciphertext),
        rounds=10, iterations=3,
    )


# -- A2: block size ----------------------------------------------------------------

@pytest.mark.parametrize("block_size", [1, 10, 50])
def test_block_size_ablation(benchmark, block_size):
    def run():
        chain = PermissionedBlockchain(block_size=block_size)
        for i in range(50):
            chain.submit_public({"v": i})
        chain.process()
        chain.flush()
        assert chain.verify_chain()
        return chain.height

    benchmark.pedantic(run, rounds=2, iterations=1)


# -- A3: centralized vs distributed issuance ------------------------------------------

def test_centralized_issuance(benchmark):
    authority = TokenAuthority(budget_per_period=10**6, rsa_bits=512)
    wallet = TokenWallet("w", authority.public_key)
    benchmark.pedantic(
        lambda: wallet.request_tokens(authority, period=1, count=1),
        rounds=5, iterations=1,
    )


@pytest.mark.parametrize("signers", [2, 4, 8])
def test_distributed_issuance(benchmark, signers):
    authority = DistributedTokenAuthority(
        signers=signers, budget_per_period=10**6, rsa_bits=512
    )
    wallet = TokenWallet("w", authority.public_key)
    benchmark.pedantic(
        lambda: wallet.request_tokens(authority, period=1, count=1),
        rounds=5, iterations=1,
    )


# -- A4: auditor strategy -----------------------------------------------------------

def test_incremental_audit(benchmark):
    ledger = CentralLedger()
    for i in range(2000):
        ledger.append({"update": i})
    auditor = LedgerAuditor()
    auditor.audit(ledger)

    def round_trip():
        ledger.append({"update": -1})
        assert auditor.audit(ledger).ok

    benchmark.pedantic(round_trip, rounds=5, iterations=1)


def test_full_rehash_audit(benchmark):
    ledger = CentralLedger()
    for i in range(2000):
        ledger.append({"update": i})

    def full_rehash():
        ledger.append({"update": -1})
        tree = MerkleTree([e.leaf_bytes() for e in ledger.entries()])
        assert tree.root() == ledger.digest().root

    benchmark.pedantic(full_rehash, rounds=5, iterations=1)


def test_ablation_report(benchmark, capsys, paillier_keys):
    import time

    rows = []

    def sweep():
        rows.clear()
        # A1
        ct = paillier_keys.public_key.encrypt(42)
        start = time.perf_counter()
        for _ in range(20):
            paillier_keys.private_key.decrypt(ct)
        plain = (time.perf_counter() - start) / 20
        start = time.perf_counter()
        for _ in range(20):
            paillier_keys.private_key.decrypt_crt(ct)
        crt = (time.perf_counter() - start) / 20
        rows.append(["A1 paillier decrypt", f"plain {plain*1e6:.0f}us",
                     f"crt {crt*1e6:.0f}us", f"{plain/crt:.1f}x"])
        # A3
        central = TokenAuthority(budget_per_period=10**6, rsa_bits=512)
        wallet = TokenWallet("w", central.public_key)
        start = time.perf_counter()
        for _ in range(5):
            wallet.request_tokens(central, period=1, count=1)
        central_cost = (time.perf_counter() - start) / 5
        for signers in (2, 8):
            authority = DistributedTokenAuthority(
                signers=signers, budget_per_period=10**6, rsa_bits=512
            )
            dist_wallet = TokenWallet("w", authority.public_key)
            start = time.perf_counter()
            for _ in range(5):
                dist_wallet.request_tokens(authority, period=1, count=1)
            cost = (time.perf_counter() - start) / 5
            rows.append([
                f"A3 issuance, {signers} signers",
                f"central {central_cost*1e3:.2f}ms",
                f"distributed {cost*1e3:.2f}ms",
                f"{cost/central_cost:.1f}x",
            ])

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print_table("Ablations", ["ablation", "baseline", "variant",
                                  "ratio"], rows)
