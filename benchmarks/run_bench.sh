#!/usr/bin/env bash
# Clean-output bench runner.
#
# CI images (and some interactive shells) initialize conda from
# login-shell startup files, which prints
#
#   WARNING conda.cli.condarc:set_key(...): Key auto_activate_base is
#   an alias of auto_activate; setting value with latter
#
# on stderr before anything else runs.  Captured "bench output" then
# leads with a warning that breaks table diffs and any consumer
# parsing a redirected stream.  This runner keeps bench output clean
# two ways: it is a plain non-login script (so shell-init warnings
# never fire inside it), and it filters residual conda condarc
# warnings from the bench's stderr — stdout is passed through
# untouched, and the bench's exit code is preserved.
#
# Usage: benchmarks/run_bench.sh [bench_pipeline.py args...]
#   e.g. benchmarks/run_bench.sh --smoke --durability --shards 1 2 4
set -uo pipefail
cd "$(dirname "$0")/.."

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python benchmarks/bench_pipeline.py "$@" \
    2> >(grep -v 'conda\.cli\.condarc' >&2)
status=$?
# Let the stderr filter drain before the caller's prompt returns.
wait
exit "$status"
