"""E8 (RC4-single): centralized ledger costs vs. history length.

Appends are O(1), digests O(n) over leaf hashes (cacheable), proofs
O(log n), audits O(log n + spot checks) — the access pattern a QLDB-
style deployment relies on.
"""

import pytest

from repro.ledger.audit import LedgerAuditor
from repro.ledger.central import CentralLedger

from _report import print_table


def filled(n):
    ledger = CentralLedger()
    for i in range(n):
        ledger.append({"update": i, "digest": "0x" + "ab" * 16})
    return ledger


@pytest.mark.parametrize("n", [100, 1000, 10_000])
def test_append_cost(benchmark, n):
    ledger = filled(n)
    benchmark.pedantic(lambda: ledger.append({"update": -1}), rounds=10,
                       iterations=5)


@pytest.mark.parametrize("n", [100, 1000, 10_000])
def test_inclusion_proof_cost(benchmark, n):
    ledger = filled(n)
    benchmark.pedantic(lambda: ledger.prove_inclusion(n // 2), rounds=5,
                       iterations=2)


@pytest.mark.parametrize("n", [100, 1000])
def test_audit_cost(benchmark, n):
    ledger = filled(n)
    auditor = LedgerAuditor()
    auditor.audit(ledger)

    def audit_round():
        ledger.append({"update": -1})
        assert auditor.audit(ledger, spot_check=3).ok

    benchmark.pedantic(audit_round, rounds=5, iterations=1)


def test_ledger_scaling_report(benchmark, capsys):
    import time

    rows = []

    def sweep():
        rows.clear()
        for n in (100, 1000, 10_000):
            ledger = filled(n)
            start = time.perf_counter()
            proof = ledger.prove_inclusion(n // 2)
            proof_cost = time.perf_counter() - start
            rows.append([
                n,
                len(proof.path),
                f"{proof_cost * 1e3:.2f}ms",
            ])

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print_table(
            "E8: inclusion proof size/cost vs history length (O(log n))",
            ["entries", "proof nodes", "prove cost"],
            rows,
        )
