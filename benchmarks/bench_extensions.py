"""E15: cost of the extension features.

* ORAM overhead — the price of closing the ACCESS_PATTERN channel,
  vs direct table access (O(log N) blocks per access);
* authenticated query costs — snapshot, membership proof, absence
  proof, and client verification;
* the constraint-DSL parse cost (one-time per regulation).
"""

import pytest

from repro.database.schema import ColumnType, TableSchema
from repro.database.table import Table
from repro.ledger.authenticated import (
    AuthenticatedTableView,
    verify_absence,
    verify_row,
)
from repro.model.dsl import parse_regulation
from repro.privacy.oram import PathORAM

from _report import print_table


def make_table(n):
    table = Table(TableSchema.build(
        "kv", [("key", ColumnType.INT), ("value", ColumnType.INT)],
        primary_key=["key"],
    ))
    for i in range(n):
        table.insert({"key": i * 2, "value": i})  # even keys only
    return table


@pytest.mark.parametrize("capacity", [64, 256, 1024])
def test_oram_access_cost(benchmark, capacity):
    oram = PathORAM(capacity=capacity)
    for i in range(capacity):
        oram.write(i, i)
    benchmark.pedantic(lambda: oram.read(capacity // 2), rounds=10,
                       iterations=2)


def test_direct_access_baseline(benchmark):
    table = make_table(1024)
    benchmark.pedantic(lambda: table.get((512,)), rounds=10, iterations=10)


@pytest.mark.parametrize("n", [100, 1000])
def test_snapshot_cost(benchmark, n):
    view = AuthenticatedTableView(make_table(n))
    benchmark.pedantic(view.snapshot, rounds=3, iterations=1)


def test_membership_proof_and_verify(benchmark):
    view = AuthenticatedTableView(make_table(1000))
    commitment = view.snapshot()

    def round_trip():
        proof = view.prove_row((500,))
        assert verify_row(commitment, proof)

    benchmark.pedantic(round_trip, rounds=5, iterations=2)


def test_sse_add_and_search_cost(benchmark):
    from repro.privacy.sse import SSEClient

    client = SSEClient(master_key=b"k" * 32)
    for i in range(500):
        client.add_record(f"doc-{i}", [f"kw-{i % 20}"])

    def add_and_search():
        client.add_record(f"doc-extra-{client.server.observed_adds}",
                          ["kw-3"])
        client.search("kw-3")

    benchmark.pedantic(add_and_search, rounds=5, iterations=1)


def test_dsl_parse_cost(benchmark):
    text = ("SUM(hours) WHERE hours >= 1 PER worker "
            "WITHIN 7d OF completed_at <= 40 ON tasks")
    benchmark.pedantic(lambda: parse_regulation(text), rounds=10,
                       iterations=5)


def test_extensions_report(benchmark, capsys):
    import time

    rows = []

    def sweep():
        rows.clear()
        # ORAM vs direct.
        table = make_table(1024)
        start = time.perf_counter()
        for _ in range(50):
            table.get((512,))
        direct = (time.perf_counter() - start) / 50
        for capacity in (64, 256, 1024):
            oram = PathORAM(capacity=capacity)
            for i in range(capacity):
                oram.write(i, i)
            start = time.perf_counter()
            for _ in range(50):
                oram.read(capacity // 2)
            cost = (time.perf_counter() - start) / 50
            rows.append([
                f"ORAM read, N={capacity}", f"{cost * 1e6:,.0f}us",
                f"{cost / max(direct, 1e-9):,.0f}x direct",
            ])
        # Authenticated queries.
        view = AuthenticatedTableView(make_table(1000))
        start = time.perf_counter()
        commitment = view.snapshot()
        snap = time.perf_counter() - start
        rows.append([f"snapshot, 1000 rows", f"{snap * 1e3:,.1f}ms", "-"])
        start = time.perf_counter()
        for _ in range(20):
            proof = view.prove_row((500,))
            verify_row(commitment, proof)
        member = (time.perf_counter() - start) / 20
        rows.append(["membership prove+verify", f"{member * 1e3:,.2f}ms",
                     f"{proof.proof.tree_size} leaves"])
        start = time.perf_counter()
        for _ in range(20):
            absent = view.prove_absent((501,))
            verify_absence(commitment, absent)
        absence = (time.perf_counter() - start) / 20
        rows.append(["absence prove+verify", f"{absence * 1e3:,.2f}ms", "-"])
        # SSE: dynamic add + keyword search over a 500-entry index.
        from repro.privacy.sse import SSEClient

        client = SSEClient(master_key=b"k" * 32)
        for i in range(500):
            client.add_record(f"d{i}", [f"kw-{i % 20}"])
        start = time.perf_counter()
        for _ in range(20):
            client.search("kw-3")
        search = (time.perf_counter() - start) / 20
        rows.append(["SSE search (25 matches / 500 entries)",
                     f"{search * 1e6:,.0f}us", "forward-private"])

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print_table("E15: extension-feature costs",
                    ["operation", "cost", "note"], rows)
