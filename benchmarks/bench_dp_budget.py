"""E4 (RC1): DP budget exhaustion under increasing update rates.

The paper: naive DP use "lead[s] to rapidly exhausting the limited
privacy budget, especially when updates come at a high rate."  We sweep
the arrival rate and report how long a fixed budget lasts, and the
noise scale required to survive a full day — the two failure modes
(stops accepting updates vs. uncontrolled noise).
"""

import pytest

from repro.common.errors import BudgetExhausted
from repro.privacy.dp import DPIndex, DPSyncScheduler, PrivacyAccountant
from repro.workloads.streams import poisson_arrivals

from _report import print_table

TOTAL_EPSILON = 10.0
EPSILON_PER_REFRESH = 0.5


def survive_time(rate, refresh_every=10):
    """Simulated seconds until the budget dies at a given update rate."""
    arrivals = poisson_arrivals(rate, duration=10_000.0, seed=int(rate * 10))
    accountant = PrivacyAccountant(TOTAL_EPSILON)
    index = DPIndex(0, 1e6, 32, accountant, EPSILON_PER_REFRESH)
    values = []
    for i, t in enumerate(arrivals):
        values.append(float(i % 1000))
        if (i + 1) % refresh_every == 0:
            try:
                index.refresh(values)
            except BudgetExhausted:
                return t
    return None  # survived the horizon


@pytest.mark.parametrize("rate", [0.1, 1.0, 10.0])
def test_budget_lifetime(benchmark, rate):
    result = benchmark.pedantic(survive_time, args=(rate,), rounds=1,
                                iterations=1)


def test_dp_budget_report(benchmark, capsys):
    rows = []

    def sweep():
        rows.clear()
        for rate in (0.01, 0.1, 1.0, 10.0):
            lifetime = survive_time(rate)
            # Alternative: survive a fixed day by stretching epsilon —
            # what noise scale does that force?
            updates_per_day = rate * 86_400
            refreshes_needed = max(1.0, updates_per_day / 10)
            epsilon_each = TOTAL_EPSILON / refreshes_needed
            noise_scale = 1.0 / epsilon_each
            rows.append([
                f"{rate}/s",
                "survives" if lifetime is None else f"{lifetime:,.0f}s",
                f"{noise_scale:,.0f}",
            ])

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print_table(
            "E4: DP budget (eps=10, 0.5/refresh, refresh every 10 updates)",
            ["update rate", "budget lifetime", "noise scale to survive 1 day"],
            rows,
        )


def test_continual_counter_report(benchmark, capsys):
    """E4c: the binary-tree mechanism (paper ref [33]) vs the naive
    per-release split — the principled fix for budget exhaustion."""
    import statistics

    from repro.privacy.continual import (
        BinaryTreeCounter,
        NaiveContinualCounter,
    )
    from repro.privacy.dp import LaplaceMechanism

    rows = []

    def sweep():
        rows.clear()
        epsilon = 2.0
        for releases in (16, 64, 256, 1024):
            tree = BinaryTreeCounter(horizon=releases, epsilon=epsilon,
                                     mechanism=LaplaceMechanism(seed=3))
            naive = NaiveContinualCounter(
                epsilon=epsilon, expected_releases=releases,
                mechanism=LaplaceMechanism(seed=4),
            )
            tree_err, naive_err = [], []
            for _ in range(releases):
                tree.add(1.0)
                naive.add(1.0)
                tree_err.append(abs(tree.release() - tree.true_count()))
                naive_err.append(abs(naive.release() - naive.true_count()))
            rows.append([
                releases,
                f"{statistics.fmean(naive_err):.1f}",
                f"{statistics.fmean(tree_err):.1f}",
                f"{statistics.fmean(naive_err) / statistics.fmean(tree_err):.1f}x",
            ])

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print_table(
            "E4c: continual release error, naive vs binary-tree (eps=2 total)",
            ["releases", "naive mean err", "tree mean err", "improvement"],
            rows,
        )


def test_dpsync_overhead_report(benchmark, capsys):
    """DP-Sync's cost of hiding the update pattern: dummy records and
    delay, as a function of epoch length."""
    rows = []

    def sweep():
        rows.clear()
        arrivals = poisson_arrivals(2.0, duration=100.0, seed=8)
        for epoch in (0.5, 1.0, 5.0):
            accountant = PrivacyAccountant(10**6)
            scheduler = DPSyncScheduler(epoch, accountant,
                                        epsilon_per_epoch=1.0)
            for t in arrivals:
                scheduler.submit(t)
            flushes = scheduler.finish(200.0)
            emitted = sum(f.real_count for f in flushes)
            rows.append([
                f"{epoch}s",
                len(flushes),
                scheduler.dummies_written,
                f"{scheduler.dummies_written / max(1, emitted):.1%}",
            ])

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print_table(
            "E4b: DP-Sync pattern hiding cost (200 real updates)",
            ["epoch", "flushes", "dummies", "dummy overhead"],
            rows,
        )
