"""E5 (RC2): token vs. MPC federated regulation enforcement.

The paper's centralized/decentralized split: tokens are nearly free per
update but need a trusted authority; MPC removes the authority at a
steep and platform-count-sensitive cost.  The report sweeps the number
of platforms to find the shape (token flat, MPC superlinear).
"""

import itertools

import pytest

from repro.core.federated import MPCVerifier, TokenVerifier
from repro.database.engine import Database
from repro.database.schema import ColumnType, TableSchema
from repro.model.constraints import upper_bound_regulation
from repro.model.update import Update, UpdateOperation

from _report import print_table

_ids = itertools.count()


def platform_db(name):
    db = Database(name)
    db.create_table(TableSchema.build(
        "tasks",
        [("task_id", ColumnType.TEXT), ("worker", ColumnType.TEXT),
         ("hours", ColumnType.INT)],
        primary_key=["task_id"],
    ))
    return db


def flsa(bound=10**6):
    return upper_bound_regulation("flsa", "tasks", "hours", bound, ["worker"])


def task(manager="p0"):
    i = next(_ids)
    return Update(
        table="tasks", operation=UpdateOperation.INSERT,
        payload={"task_id": f"t{i}", "worker": f"w{i % 16}", "hours": 2},
        producers=[f"w{i % 16}"], managers=[manager],
    )


def test_token_verification_cost(benchmark):
    engine = TokenVerifier(flsa())

    benchmark.pedantic(lambda: engine.verify(task(), 0.0), rounds=10,
                       iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("platforms", [2, 4])
def test_mpc_verification_cost(benchmark, platforms):
    dbs = [platform_db(f"p{i}") for i in range(platforms)]
    engine = MPCVerifier(dbs, flsa(bound=1000), width=10)
    benchmark.pedantic(lambda: engine.verify(task(), 0.0), rounds=3,
                       iterations=1)


def test_federated_report(benchmark, capsys):
    import time

    rows = []

    def sweep():
        rows.clear()
        # Demarcation (paper ref [19]): the non-private baseline.
        from repro.core.demarcation import DemarcationFederation

        federation = DemarcationFederation(["p0", "p1", "p2", "p3"],
                                           bound=10**6)
        start = time.perf_counter()
        for i in range(200):
            federation.consume(f"p{i % 4}", f"w{i % 16}", 2.0)
        demarcation_cost = (time.perf_counter() - start) / 200
        rows.append([
            "demarcation", 4, f"{demarcation_cost * 1e6:.1f}us",
            "NO privacy", "transfers visible to all peers",
        ])
        # Token: constant cost regardless of platform count.
        engine = TokenVerifier(flsa())
        start = time.perf_counter()
        for _ in range(10):
            engine.verify(task(), 0.0)
        token_cost = (time.perf_counter() - start) / 10
        rows.append(["token", "any", f"{token_cost * 1e3:.2f}ms",
                     "trusted authority", "COUNT/SUM bounds only"])
        for platforms in (2, 4, 6, 8):
            dbs = [platform_db(f"q{platforms}-{i}") for i in range(platforms)]
            engine = MPCVerifier(dbs, flsa(bound=1000), width=10)
            start = time.perf_counter()
            for _ in range(3):
                engine.verify(task(f"q{platforms}-0"), 0.0)
            cost = (time.perf_counter() - start) / 3
            messages = engine.metrics.counter("mpc.messages").total
            rows.append([
                "mpc", platforms, f"{cost * 1e3:.2f}ms",
                "no trusted party", f"{messages / 3:,.0f} msgs/verify",
            ])

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print_table(
            "E5: federated regulation enforcement, token vs MPC",
            ["mechanism", "platforms", "cost/update", "trust", "notes"],
            rows,
        )
