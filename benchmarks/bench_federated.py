"""E5 (RC2): token vs. MPC federated regulation enforcement — plus the
federated deployment bench: consensus choice x shard count x network.

The paper's centralized/decentralized split: tokens are nearly free per
update but need a trusted authority; MPC removes the authority at a
steep and platform-count-sensitive cost.  The report sweeps the number
of platforms to find the shape (token flat, MPC superlinear).

The federated family prices the replication layer head-to-head (the
paper's Paxos-vs-PBFT discussion): a consensus-backed
:class:`~repro.core.sharded.ShardedPReVer` under each replication
driver (local / paxos / pbft / sharper), across shard counts and
simulated network profiles (lan / wan), measuring wall throughput and
ordering p50/p99 — and asserting every configuration converges to the
*same* root-of-roots as the LocalDriver baseline at that shard count
(per-batch cross-replica root equality is asserted inside
:class:`~repro.core.replicated.ReplicatedShard` on every decided
batch).  Writes ``BENCH_federated.json``.  Standalone:

    PYTHONPATH=src python benchmarks/bench_federated.py [--smoke]
"""

import argparse
import functools
import itertools
import json
import time

try:
    import pytest
except ImportError:  # standalone --smoke runs don't need pytest
    pytest = None

from repro.consensus.driver import ReplicationPlan
from repro.core.federated import MPCVerifier, TokenVerifier
from repro.core.framework import PReVer
from repro.core.sharded import ShardedPReVer, ShardSpec
from repro.database.engine import Database
from repro.database.schema import ColumnType, TableSchema
from repro.model.constraints import (
    Constraint,
    ConstraintKind,
    upper_bound_regulation,
)
from repro.model.update import Update, UpdateOperation
from repro.net.simnet import NETWORK_PROFILES

from _report import print_table

_ids = itertools.count()


def platform_db(name):
    db = Database(name)
    db.create_table(TableSchema.build(
        "tasks",
        [("task_id", ColumnType.TEXT), ("worker", ColumnType.TEXT),
         ("hours", ColumnType.INT)],
        primary_key=["task_id"],
    ))
    return db


def flsa(bound=10**6):
    return upper_bound_regulation("flsa", "tasks", "hours", bound, ["worker"])


def task(manager="p0"):
    i = next(_ids)
    return Update(
        table="tasks", operation=UpdateOperation.INSERT,
        payload={"task_id": f"t{i}", "worker": f"w{i % 16}", "hours": 2},
        producers=[f"w{i % 16}"], managers=[manager],
    )


# -- the federated consensus family (replication layer head-to-head) --------

def federated_table(index):
    return f"t{index}"


def build_federated_shard(name, table, replica=0):
    """Module-level builder for one consensus-backed shard replica.

    Deterministic (pinned constraint id, fresh SimClock per framework)
    so every replica — and the LocalDriver baseline — produces the
    same decision and anchor bytes for the same decided order.
    """
    db = Database(name)
    db.create_table(TableSchema.build(
        table,
        [("id", ColumnType.INT), ("who", ColumnType.TEXT),
         ("amount", ColumnType.INT)],
        primary_key=["id"],
    ))
    framework = PReVer([db])
    template = upper_bound_regulation("cap", table, "amount", 50, ["who"])
    framework.register_constraint(Constraint(
        name="cap", kind=ConstraintKind.INTERNAL,
        aggregate=template.aggregate, comparison=template.comparison,
        bound=50, tables=(table,), constraint_id=f"cst-{name}-cap",
    ))
    return framework


def federated_specs(n_shards):
    return [
        ShardSpec(
            f"f{i}", (federated_table(i),),
            functools.partial(build_federated_shard, f"f{i}",
                              federated_table(i)),
        )
        for i in range(n_shards)
    ]


def federated_stream(n_shards, n_updates):
    """Round-robin across the shards' tables; the 50-cap per (who,
    table) trips after two accepts, so the stream exercises both
    decision paths deterministically."""
    return [
        Update(
            table=federated_table(i % n_shards),
            operation=UpdateOperation.INSERT,
            payload={"id": i, "who": f"w{i % 4}", "amount": 20},
            update_id=f"fed-{i:05d}",
        )
        for i in range(n_updates)
    ]


def _run_sharded(sharded, stream, chunk):
    start = time.perf_counter()
    for lo in range(0, len(stream), chunk):
        sharded.submit_many(stream[lo:lo + chunk])
    return time.perf_counter() - start


def run_federated_consensus(
    drivers=("local", "paxos", "pbft", "sharper"),
    shard_counts=(1, 2),
    profiles=("lan", "wan"),
    updates=120,
    chunk=12,
    replicas=2,
    out_path="BENCH_federated.json",
):
    """The consensus x shards x network sweep.

    Every row replays the same per-shard-count stream; the LocalDriver
    baseline's root-of-roots is the reference every consensus-backed
    row must (and does, asserted) reproduce — ordering is a total
    order over the same batches, so the state machines converge.
    """
    baselines = {}
    for n_shards in shard_counts:
        baseline = ShardedPReVer(federated_specs(n_shards))
        seconds = _run_sharded(baseline,
                               federated_stream(n_shards, updates), chunk)
        baselines[n_shards] = {
            "root": baseline.digest().root.hex(),
            "seconds": seconds,
        }
        baseline.close()
    rows = []
    for n_shards, driver, profile in itertools.product(
            shard_counts, drivers, profiles):
        if driver == "local" and profile != profiles[0]:
            continue  # no network under the local driver
        plan = ReplicationPlan(kind=driver, replicas=replicas,
                               profile=profile)
        sharded = ShardedPReVer(federated_specs(n_shards), consensus=plan)
        seconds = _run_sharded(sharded,
                               federated_stream(n_shards, updates), chunk)
        digest = sharded.digest()  # asserts cross-replica convergence
        root = digest.root.hex()
        decide = sharded.metrics.timer("consensus.decide")
        report = sharded.consensus_report()
        clusters = {
            name: stats["cluster"]
            for name, stats in report.items() if "cluster" in stats
        }
        row = {
            "driver": driver,
            "shards": n_shards,
            "profile": profile if driver != "local" else None,
            "replicas": replicas,
            "updates": updates,
            "seconds": seconds,
            "per_sec": updates / seconds,
            "decide_p50_ms": decide.percentile(50) * 1e3,
            "decide_p99_ms": decide.percentile(99) * 1e3,
            "root": root,
            "root_matches_local": root == baselines[n_shards]["root"],
            "clusters": clusters,
        }
        sharded.close()
        if not row["root_matches_local"]:
            raise AssertionError(
                f"{driver}/{profile} at {n_shards} shards diverged from "
                f"the local baseline root"
            )
        rows.append(row)
    artifact = {
        "experiment": "E-federated",
        "description": "consensus-backed sharded deployment: replication "
                       "driver (local/paxos/pbft/sharper) x shard count x "
                       "simulated network profile vs wall throughput and "
                       "ordering p50/p99, with root-of-roots equality "
                       "asserted against the LocalDriver baseline and "
                       "per-batch cross-replica root equality asserted "
                       "inside ReplicatedShard",
        "updates": updates,
        "chunk": chunk,
        "replicas": replicas,
        "profiles": {name: NETWORK_PROFILES[name].to_dict()
                     for name in profiles if name in NETWORK_PROFILES},
        "baselines": baselines,
        "rows": rows,
    }
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2)
    return artifact


FEDERATED_HEADERS = ["driver", "shards", "profile", "throughput",
                     "decide-p50", "decide-p99", "root==local"]


def federated_rows(artifact):
    return [
        [
            r["driver"], r["shards"], r["profile"] or "-",
            f"{r['per_sec']:.0f}/s",
            f"{r['decide_p50_ms']:.2f}ms",
            f"{r['decide_p99_ms']:.2f}ms",
            "yes" if r["root_matches_local"] else "NO",
        ]
        for r in artifact["rows"]
    ]


def test_token_verification_cost(benchmark):
    engine = TokenVerifier(flsa())

    benchmark.pedantic(lambda: engine.verify(task(), 0.0), rounds=10,
                       iterations=1, warmup_rounds=1)


if pytest is not None:

    @pytest.mark.parametrize("platforms", [2, 4])
    def test_mpc_verification_cost(benchmark, platforms):
        dbs = [platform_db(f"p{i}") for i in range(platforms)]
        engine = MPCVerifier(dbs, flsa(bound=1000), width=10)
        benchmark.pedantic(lambda: engine.verify(task(), 0.0), rounds=3,
                           iterations=1)


def test_federated_consensus_report(benchmark, capsys):
    """The replication-layer head-to-head, smoke-sized: every driver at
    1 and 2 shards on lan/wan must reproduce the LocalDriver baseline's
    root-of-roots (the artifact write itself asserts it)."""
    artifact = {}

    def sweep():
        artifact.update(run_federated_consensus(updates=48, chunk=12))

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print_table(
            "E-federated: consensus x shards x network",
            FEDERATED_HEADERS,
            federated_rows(artifact),
        )
    assert all(r["root_matches_local"] for r in artifact["rows"])
    drivers = {r["driver"] for r in artifact["rows"]}
    assert {"local", "paxos", "pbft", "sharper"} <= drivers
    assert {r["shards"] for r in artifact["rows"]} == {1, 2}


def test_federated_report(benchmark, capsys):
    rows = []

    def sweep():
        rows.clear()
        # Demarcation (paper ref [19]): the non-private baseline.
        from repro.core.demarcation import DemarcationFederation

        federation = DemarcationFederation(["p0", "p1", "p2", "p3"],
                                           bound=10**6)
        start = time.perf_counter()
        for i in range(200):
            federation.consume(f"p{i % 4}", f"w{i % 16}", 2.0)
        demarcation_cost = (time.perf_counter() - start) / 200
        rows.append([
            "demarcation", 4, f"{demarcation_cost * 1e6:.1f}us",
            "NO privacy", "transfers visible to all peers",
        ])
        # Token: constant cost regardless of platform count.
        engine = TokenVerifier(flsa())
        start = time.perf_counter()
        for _ in range(10):
            engine.verify(task(), 0.0)
        token_cost = (time.perf_counter() - start) / 10
        rows.append(["token", "any", f"{token_cost * 1e3:.2f}ms",
                     "trusted authority", "COUNT/SUM bounds only"])
        for platforms in (2, 4, 6, 8):
            dbs = [platform_db(f"q{platforms}-{i}") for i in range(platforms)]
            engine = MPCVerifier(dbs, flsa(bound=1000), width=10)
            start = time.perf_counter()
            for _ in range(3):
                engine.verify(task(f"q{platforms}-0"), 0.0)
            cost = (time.perf_counter() - start) / 3
            messages = engine.metrics.counter("mpc.messages").total
            rows.append([
                "mpc", platforms, f"{cost * 1e3:.2f}ms",
                "no trusted party", f"{messages / 3:,.0f} msgs/verify",
            ])

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print_table(
            "E5: federated regulation enforcement, token vs MPC",
            ["mechanism", "platforms", "cost/update", "trust", "notes"],
            rows,
        )


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="federated deployment: consensus x shards x network"
    )
    parser.add_argument("--updates", type=int, default=240,
                        help="stream length per configuration")
    parser.add_argument("--chunk", type=int, default=24,
                        help="submit_many batch size (one consensus "
                             "proposal per chunk)")
    parser.add_argument("--replicas", type=int, default=2,
                        help="state-machine replicas per shard")
    parser.add_argument("--shards", type=int, nargs="+", default=[1, 2],
                        help="shard counts to sweep")
    parser.add_argument("--profiles", nargs="+", default=["lan", "wan"],
                        help="simulated network profiles to sweep")
    parser.add_argument("--out", default="BENCH_federated.json",
                        help="artifact path ('' to skip writing)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny stream (CI-sized); same grid")
    args = parser.parse_args(argv)
    updates = 48 if args.smoke else args.updates
    chunk = 12 if args.smoke else args.chunk
    artifact = run_federated_consensus(
        shard_counts=tuple(args.shards),
        profiles=tuple(args.profiles),
        updates=updates, chunk=chunk, replicas=args.replicas,
        out_path=args.out,
    )
    print_table(
        "E-federated: consensus x shards x network",
        FEDERATED_HEADERS,
        federated_rows(artifact),
    )
    if args.out:
        print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
