"""E11 (Section 5): Separ end-to-end regulation-enforcement overhead.

Task completions through the full Separ stack (blind tokens +
double-spend registry + sharded blockchain anchoring) versus an
unregulated baseline that just writes to the platform database.
"""

import itertools

import pytest

from repro.core.separ import SeparSystem
from repro.database.engine import Database
from repro.database.schema import ColumnType, TableSchema

from _report import print_table

_ids = itertools.count()


def build_separ(platforms=4):
    system = SeparSystem(
        [f"p{i}" for i in range(platforms)], weekly_hour_cap=10**6
    )
    for w in range(8):
        system.register_worker(f"w{w}")
    return system


def test_separ_task_cost(benchmark):
    system = build_separ()

    def one_task():
        i = next(_ids)
        system.complete_task(f"w{i % 8}", f"p{i % 4}", 2)

    benchmark.pedantic(one_task, rounds=10, iterations=1, warmup_rounds=1)


def test_unregulated_baseline_cost(benchmark):
    db = Database("plain")
    db.create_table(TableSchema.build(
        "tasks",
        [("task_id", ColumnType.TEXT), ("worker", ColumnType.TEXT),
         ("hours", ColumnType.INT)],
        primary_key=["task_id"],
    ))

    def one_task():
        i = next(_ids)
        db.insert("tasks", {"task_id": f"t{i}", "worker": f"w{i % 8}",
                            "hours": 2})

    benchmark.pedantic(one_task, rounds=10, iterations=5)


def test_separ_report(benchmark, capsys):
    import time

    rows = []

    def sweep():
        rows.clear()
        system = build_separ()
        n = 40
        start = time.perf_counter()
        for i in range(n):
            result = system.complete_task(f"w{i % 8}", f"p{i % 4}", 2)
            assert result.accepted
        elapsed = time.perf_counter() - start
        system.settle()
        rows.append([
            "separ (tokens+chain)", f"{n / elapsed:.0f} tasks/s",
            f"{elapsed / n * 1e3:.2f}ms",
            system.registry.total_spent(),
        ])
        db = Database("plain2")
        db.create_table(TableSchema.build(
            "tasks",
            [("task_id", ColumnType.TEXT), ("worker", ColumnType.TEXT),
             ("hours", ColumnType.INT)],
            primary_key=["task_id"],
        ))
        start = time.perf_counter()
        for i in range(n):
            db.insert("tasks", {"task_id": f"b{i}", "worker": f"w{i % 8}",
                                "hours": 2})
        elapsed = time.perf_counter() - start
        rows.append([
            "unregulated baseline", f"{n / elapsed:,.0f} tasks/s",
            f"{elapsed / n * 1e3:.3f}ms", "-",
        ])

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print_table(
            "E11: Separ end-to-end vs unregulated baseline (40 tasks)",
            ["system", "throughput", "latency/task", "tokens spent"],
            rows,
        )
