"""E14 (RC1): zero-knowledge proof cost vs statement size.

Range/bound proofs are the verifiable-computation substitute for the
zk-SNARKs the paper names; their cost is linear in the bit width —
the "considerable overhead" RC1 warns about, quantified.
"""

import pytest

from repro.crypto import zkp
from repro.crypto.commitments import PedersenCommitter

from _report import print_table

COMMITTER = PedersenCommitter()


@pytest.mark.parametrize("bits", [8, 16, 32])
def test_range_proof_generation(benchmark, bits):
    benchmark.pedantic(
        lambda: zkp.prove_range(COMMITTER, (1 << bits) - 1, bits),
        rounds=3, iterations=1,
    )


@pytest.mark.parametrize("bits", [8, 16, 32])
def test_range_proof_verification(benchmark, bits):
    commitment, _, proof = zkp.prove_range(COMMITTER, (1 << bits) - 1, bits)
    benchmark.pedantic(
        lambda: zkp.verify_range(COMMITTER, commitment, proof),
        rounds=3, iterations=1,
    )


def test_zkp_scaling_report(benchmark, capsys):
    import time

    rows = []

    def sweep():
        rows.clear()
        for bits in (8, 16, 24, 32):
            start = time.perf_counter()
            commitment, _, proof = zkp.prove_range(
                COMMITTER, (1 << bits) - 1, bits
            )
            prove_cost = time.perf_counter() - start
            start = time.perf_counter()
            assert zkp.verify_range(COMMITTER, commitment, proof)
            verify_cost = time.perf_counter() - start
            rows.append([
                bits,
                f"{prove_cost * 1e3:,.1f}ms",
                f"{verify_cost * 1e3:,.1f}ms",
                bits * 6 + 1,  # group elements in the proof
            ])

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print_table(
            "E14: range-proof cost vs bit width (linear, not succinct)",
            ["bits", "prove", "verify", "proof elements"],
            rows,
        )
