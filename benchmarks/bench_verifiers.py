"""E3 (RC1): constraint-verification mechanisms head-to-head.

One linear aggregate constraint, one update, every engine.  The series
the paper predicts: plaintext < enclave << paillier << zkp, with the
dp-index cheap but approximate (its error rate is also reported).
"""

import itertools

import pytest

from repro.core.verifiers import (
    DPIndexVerifier,
    EnclaveVerifier,
    PaillierVerifier,
    PlaintextVerifier,
    ZKPVerifier,
)
from repro.database.engine import Database
from repro.database.schema import ColumnType, TableSchema
from repro.model.constraints import upper_bound_regulation
from repro.model.update import Update, UpdateOperation
from repro.privacy.dp import DPIndex, PrivacyAccountant

from _report import print_table

_ids = itertools.count()


def fresh_db():
    db = Database("mgr")
    db.create_table(TableSchema.build(
        "reports",
        [("id", ColumnType.INT), ("org", ColumnType.TEXT),
         ("amount", ColumnType.INT)],
        primary_key=["id"],
    ))
    return db


def regulation(bound=10**6):
    return upper_bound_regulation("cap", "reports", "amount", bound, ["org"])


def make_engine(name, db):
    constraint = regulation()
    if name == "plaintext":
        return PlaintextVerifier([db], [constraint])
    if name == "enclave":
        return EnclaveVerifier([db], [constraint])
    if name == "paillier":
        return PaillierVerifier([constraint])
    if name == "zkp":
        return ZKPVerifier([constraint])
    if name == "dp-index":
        accountant = PrivacyAccountant(10**6)
        index = DPIndex(0, 1e9, 64, accountant, epsilon_per_refresh=1.0)
        return DPIndexVerifier([db], [constraint], index)
    raise ValueError(name)


def one_verify(engine):
    i = next(_ids)
    engine.verify(Update(
        table="reports", operation=UpdateOperation.INSERT,
        payload={"id": i, "org": f"org{i % 4}", "amount": 10},
    ), now=0.0)


ENGINES = ["plaintext", "enclave", "dp-index", "paillier", "zkp"]


@pytest.mark.parametrize("name", ENGINES)
def test_verification_cost(benchmark, name):
    engine = make_engine(name, fresh_db())
    rounds = 3 if name == "zkp" else 10
    benchmark.pedantic(one_verify, args=(engine,), rounds=rounds,
                       iterations=1, warmup_rounds=1)


def test_dp_index_accuracy_report(benchmark, capsys):
    """The dp-index trades accuracy for budget: measure its error rate
    near the boundary at several epsilon values."""
    rows = []

    def sweep():
        rows.clear()
        for epsilon in (0.1, 0.5, 2.0, 10.0):
            errors = 0
            trials = 60
            for t in range(trials):
                db = fresh_db()
                constraint = regulation(bound=100)
                accountant = PrivacyAccountant(10**6)
                from repro.privacy.dp import LaplaceMechanism

                index = DPIndex(0, 1e9, 64, accountant,
                                epsilon_per_refresh=epsilon,
                                mechanism=LaplaceMechanism(seed=5000 + t))
                engine = DPIndexVerifier([db], [constraint], index,
                                         refresh_every=1)
                # Ground truth: 95 already recorded, +10 exceeds 100.
                db.insert("reports",
                          {"id": 10**6 + t, "org": "x", "amount": 95})
                outcome = engine.verify(Update(
                    table="reports", operation=UpdateOperation.INSERT,
                    payload={"id": 10**6 + t + 10**7, "org": "x",
                             "amount": 10},
                ), now=0.0)
                if outcome.accepted:  # false accept
                    errors += 1
            rows.append([f"{epsilon}", f"{errors / trials:.0%}"])

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print_table("E3b: dp-index false-accept rate near the bound "
                    "(true total 105 > cap 100)",
                    ["epsilon/refresh", "false-accept rate"], rows)
