"""E10 (RC4-federated): SharPer-style sharding scalability.

Two sweeps: throughput vs shard count (near-linear for disjoint
workloads) and the cross-shard penalty vs the cross-shard transaction
ratio — the two headline curves of the SharPer paper PReVer builds on.
"""

import pytest

from repro.chain.sharper import ShardedLedger
from repro.net.simnet import SimNetwork

from _report import print_table

TXS = 40

# Each replica can handle one message per 50us of simulated time —
# this is what caps a single cluster's throughput and lets sharding's
# aggregate capacity show.
PER_MESSAGE_COST = 0.00005


def run_sharded(shards, cross_ratio=0.0):
    network = SimNetwork(per_message_cost=PER_MESSAGE_COST)
    ledger = ShardedLedger([f"s{i}" for i in range(shards)], f=1,
                           network=network)
    names = list(ledger.shards)
    for i in range(TXS):
        if shards > 1 and i % 100 < cross_ratio * 100:
            ledger.submit_cross(names[:2], {"op": i})
        else:
            ledger.submit_intra(names[i % shards], {"op": i})
    ledger.run()
    return ledger


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_sharding_simulation_cost(benchmark, shards):
    benchmark.pedantic(run_sharded, args=(shards,), rounds=2, iterations=1)


def test_sharding_report(benchmark, capsys):
    rows = []

    def sweep():
        rows.clear()
        for shards in (1, 2, 4, 8):
            ledger = run_sharded(shards)
            rows.append([
                f"{shards} shards, 0% cross",
                f"{ledger.throughput():,.0f} tx/s",
                "-",
            ])
        for ratio in (0.1, 0.3, 0.5):
            ledger = run_sharded(4, cross_ratio=ratio)
            lats = ledger.cross_shard_latencies()
            mean_cross = sum(lats) / len(lats) if lats else 0.0
            rows.append([
                f"4 shards, {ratio:.0%} cross",
                f"{ledger.throughput():,.0f} tx/s",
                f"{mean_cross * 1e3:.2f}ms cross-lat",
            ])

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print_table(
            f"E10: sharding scalability ({TXS} txs, sim-time)",
            ["configuration", "throughput", "cross-shard latency"],
            rows,
        )
