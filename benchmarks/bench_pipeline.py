"""E1 (Figure 2): end-to-end pipeline throughput per RC1 engine.

Measures the full submit() path — authenticate, verify, apply, anchor —
for the sustainability workload, across the engine menu.  The series to
observe: plaintext >> enclave > zkp/paillier (crypto dominates), the
overhead ordering the paper predicts for RC1's technique menu.
"""

import itertools

import pytest

from repro.core.contexts import single_private_database
from repro.database.engine import Database
from repro.database.schema import ColumnType, TableSchema
from repro.model.constraints import upper_bound_regulation
from repro.model.update import Update, UpdateOperation

from _report import print_table

ENGINES = ["plaintext", "enclave", "paillier", "zkp"]
_ids = itertools.count()


def build(engine):
    db = Database("mgr")
    db.create_table(TableSchema.build(
        "emissions",
        [("id", ColumnType.INT), ("org", ColumnType.TEXT),
         ("co2", ColumnType.INT)],
        primary_key=["id"],
    ))
    regulation = upper_bound_regulation(
        "cap", "emissions", "co2", 10**7, ["org"]
    )
    return single_private_database(db, [regulation], engine=engine)


def one_update(framework):
    i = next(_ids)
    framework.submit(Update(
        table="emissions", operation=UpdateOperation.INSERT,
        payload={"id": i, "org": f"org{i % 8}", "co2": 10},
    ))


@pytest.mark.parametrize("engine", ENGINES)
def test_pipeline_update_cost(benchmark, engine):
    framework = build(engine)
    benchmark.pedantic(one_update, args=(framework,), rounds=10,
                       iterations=3, warmup_rounds=1)


def test_pipeline_report(benchmark, capsys):
    """Prints the E1 summary row set (stage timings per engine)."""
    import time

    rows = []

    def sweep():
        rows.clear()
        for engine in ENGINES:
            framework = build(engine)
            start = time.perf_counter()
            n = 20
            for _ in range(n):
                one_update(framework)
            elapsed = time.perf_counter() - start
            verify_mean = framework.engine.metrics.timer(
                f"{framework.engine.name}.check"
            ).mean
            rows.append([
                engine,
                f"{n / elapsed:.0f}/s",
                f"{verify_mean * 1e3:.3f}ms",
                f"{framework.acceptance_rate():.2f}",
            ])

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print_table(
            "E1: Figure-2 pipeline, per-engine",
            ["engine", "throughput", "verify-mean", "accept-rate"],
            rows,
        )
