"""E1 (Figure 2): end-to-end pipeline throughput per RC1 engine.

Measures the full submit() path — authenticate, verify, apply, anchor —
for the sustainability workload, across the engine menu.  The series to
observe: plaintext >> enclave > zkp/paillier (crypto dominates), the
overhead ordering the paper predicts for RC1's technique menu.

Also measures the batched fast path (``submit_many``: constraint
routing, incremental aggregate cache, one Merkle anchor per batch,
Paillier offline randomness) against sequential ``submit`` on the same
update stream, asserting decision/digest equivalence, and compares the
multicore execution layer (``--executor process --workers N``) against
serial ``submit_many`` on the crypto-heavy Paillier path.  With
``--durability`` it additionally prices the crash-safety layer: the
same stream under durability off / wal (group-commit) / wal with an
fsync per record / wal+snapshot, asserting the ledger root is
identical in every mode.  ``--shards 1 2 4`` scales the same plaintext
stream across a table-partitioned ``ShardedPReVer`` (one worker
process per shard), asserting for every shard count that serial and
process dispatch reach identical decisions and the identical
root-of-roots, and reporting throughput vs the 1-shard baseline.
A profiler-overhead row prices the wall-mode sampling profiler
against the default profiler-absent path on the same stream (root
equality asserted, <=5% overhead gate; ``--profile-out`` keeps the
collapsed stacks).  Batched rows carry per-stage p50/p99 latency.
Everything is written to ``BENCH_pipeline.json``.  Standalone:

    PYTHONPATH=src python benchmarks/bench_pipeline.py [--smoke]
        [--executor {serial,process}] [--workers N] [--durability]
        [--shards N [N ...]] [--profile-out PATH]
"""

import argparse
import functools
import gc
import hashlib
import itertools
import json
import os
import random
import tempfile
import time

from repro.core.contexts import single_private_database
from repro.core.sharded import ShardedPReVer, ShardSpec
from repro.crypto import backend as math_backend
from repro.crypto.backend import FixedBaseTable, multi_exp
from repro.crypto.group import SchnorrGroup
from repro.crypto.paillier import generate_paillier_keypair
from repro.database.engine import Database
from repro.database.schema import ColumnType, TableSchema
from repro.durability import Durability
from repro.model.constraints import upper_bound_regulation
from repro.model.update import Update, UpdateOperation
from repro.obs.export import metrics_to_json
from repro.parallel import ParallelExecutor

from _report import print_table

ENGINES = ["plaintext", "enclave", "paillier", "zkp"]
BATCH_ENGINES = ["plaintext", "paillier"]
_ids = itertools.count()


def build(engine, executor=None, durability=None):
    db = Database("mgr")
    db.create_table(TableSchema.build(
        "emissions",
        [("id", ColumnType.INT), ("org", ColumnType.TEXT),
         ("co2", ColumnType.INT)],
        primary_key=["id"],
    ))
    regulation = upper_bound_regulation(
        "cap", "emissions", "co2", 10**7, ["org"]
    )
    # Deterministic id so independently built frameworks (sequential vs
    # batched, durable vs not) anchor byte-identical decision records.
    regulation.constraint_id = "cst-emissions-cap"
    return single_private_database(db, [regulation], engine=engine,
                                   executor=executor, durability=durability)


def one_update(framework):
    i = next(_ids)
    framework.submit(Update(
        table="emissions", operation=UpdateOperation.INSERT,
        payload={"id": i, "org": f"org{i % 8}", "co2": 10},
    ))


def make_stream(n):
    """A deterministic update stream (fixed update_ids so sequential
    and batched frameworks build byte-identical ledgers)."""
    return [
        Update(
            table="emissions", operation=UpdateOperation.INSERT,
            payload={"id": i, "org": f"org{i % 8}", "co2": 10},
            update_id=f"upd-{i:07d}",
        )
        for i in range(n)
    ]


def compare_batched_vs_sequential(engine, n_updates):
    """Time the same stream through submit() and submit_many().

    Returns a result dict with both throughputs and the speedup, after
    asserting the two pipelines agreed on every decision and produced
    the same ledger digest.
    """
    seq_fw, bat_fw = build(engine), build(engine)
    if engine == "paillier":
        # Offline phase: bank r^n mod n² obfuscators ahead of time.
        bat_fw.engine.precompute(n_updates)

    # GC hygiene: collect before each timed section and pause the
    # collector during it, so neither path pays for the garbage the
    # other produced (the usual timeit/pytest-benchmark discipline).
    stream = make_stream(n_updates)
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        seq_results = [seq_fw.submit(u) for u in stream]
        seq_elapsed = time.perf_counter() - start
    finally:
        gc.enable()

    stream = make_stream(n_updates)
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        bat_results = bat_fw.submit_many(stream)
        bat_elapsed = time.perf_counter() - start
    finally:
        gc.enable()

    assert [r.applied for r in seq_results] == [r.applied for r in bat_results]
    assert seq_fw.ledger.digest().root == bat_fw.ledger.digest().root, \
        "batched anchoring must reproduce the sequential digest"

    stages = bat_fw.throughput_report()["stages"]
    stage_totals = {stage: stats["total"] for stage, stats in stages.items()}
    # Per-update latency distribution per stage: the p50/p99 pair the
    # serving-tier items size against (tail, not just mean).
    stage_latency = {
        stage: {"p50": stats["p50"], "p99": stats["p99"]}
        for stage, stats in stages.items()
    }
    # Verify-stage share of the batched wall clock, charging the
    # batch-prepare phase (front-loaded contribution encryption) to
    # verify — the figure the fast-math backend attacks.
    verify_seconds = stage_totals.get("verify", 0.0) + \
        bat_fw.metrics.timer_total("pipeline.prepare_batch")
    return {
        "engine": engine,
        "updates": n_updates,
        "sequential_seconds": seq_elapsed,
        "batched_seconds": bat_elapsed,
        "sequential_per_sec": n_updates / seq_elapsed,
        "batched_per_sec": n_updates / bat_elapsed,
        "speedup": seq_elapsed / bat_elapsed,
        "verify_seconds": verify_seconds,
        "verify_share": verify_seconds / bat_elapsed,
        "batched_stage_totals": stage_totals,
        "batched_stage_latency": stage_latency,
        # Stable, versioned exporter schema (repro.obs.export): the
        # batched framework's full counter/timer telemetry, sorted so
        # consecutive artifacts diff cleanly.
        "batched_metrics": metrics_to_json(bat_fw.metrics),
    }


def compare_parallel_vs_serial(engine="paillier", n_updates=300, workers=4):
    """Time the same ``submit_many`` stream under the serial and the
    process-pool executors.

    Asserts decision and digest equivalence (the execution layer's core
    guarantee), then reports wall-clock and per-stage speedups.  The
    verify-stage figure charges the parallel run for its batch-prepare
    time (contribution encryption happens before the per-update stage
    timers).
    """
    host_cpus = os.cpu_count() or 1
    serial_fw = build(engine)
    parallel_fw = build(engine, executor=ParallelExecutor(workers=workers))

    stream = make_stream(n_updates)
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        serial_results = serial_fw.submit_many(stream)
        serial_elapsed = time.perf_counter() - start
    finally:
        gc.enable()

    stream = make_stream(n_updates)
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        parallel_results = parallel_fw.submit_many(stream)
        parallel_elapsed = time.perf_counter() - start
    finally:
        gc.enable()

    assert [r.applied for r in serial_results] == \
        [r.applied for r in parallel_results]
    assert serial_fw.ledger.digest().root == parallel_fw.ledger.digest().root, \
        "parallel execution must reproduce the serial digest"

    def stage_totals(fw):
        totals = {stage: stats["total"]
                  for stage, stats in fw.throughput_report()["stages"].items()}
        # Charge prepared work (parallel contribution encryption) to
        # the verify stage it front-loads.
        totals["verify"] = totals.get("verify", 0.0) + \
            fw.metrics.timer_total("pipeline.prepare_batch")
        return totals

    def stage_latency(fw):
        return {stage: {"p50": stats["p50"], "p99": stats["p99"]}
                for stage, stats in fw.throughput_report()["stages"].items()}

    serial_stages = stage_totals(serial_fw)
    parallel_stages = stage_totals(parallel_fw)
    stage_speedup = {
        stage: (serial_stages[stage] / parallel_stages[stage]
                if parallel_stages.get(stage) else None)
        for stage in serial_stages
    }
    note = ""
    if host_cpus < workers:
        note = (f"host exposes {host_cpus} CPU(s) for {workers} workers: "
                f"process-pool fan-out cannot exceed 1x here; speedups "
                f"reflect pure overhead, not the layer's ceiling")
    return {
        "engine": engine,
        "mode": "parallel-vs-serial",
        "updates": n_updates,
        "workers": workers,
        "host_cpus": host_cpus,
        "serial_seconds": serial_elapsed,
        "parallel_seconds": parallel_elapsed,
        "serial_per_sec": n_updates / serial_elapsed,
        "parallel_per_sec": n_updates / parallel_elapsed,
        "speedup": serial_elapsed / parallel_elapsed,
        "verify_stage_speedup": stage_speedup.get("verify"),
        "stage_speedup": stage_speedup,
        "serial_stage_totals": serial_stages,
        "parallel_stage_totals": parallel_stages,
        "serial_stage_latency": stage_latency(serial_fw),
        "parallel_stage_latency": stage_latency(parallel_fw),
        "note": note,
    }


#: The sharded comparison partitions this many tables round-robin
#: across shards, so every shard count divides the stream evenly.
SHARD_TABLE_COUNT = 4


def shard_table_names():
    return [f"emissions_{k}" for k in range(SHARD_TABLE_COUNT)]


def build_shard_framework(name, tables):
    """Module-level (picklable) builder: one shard's framework owning
    ``tables``, with one deterministic cap regulation per table."""
    db = Database(name)
    regulations = []
    for table in tables:
        db.create_table(TableSchema.build(
            table,
            [("id", ColumnType.INT), ("org", ColumnType.TEXT),
             ("co2", ColumnType.INT)],
            primary_key=["id"],
        ))
        regulation = upper_bound_regulation(
            f"cap-{table}", table, "co2", 10**7, ["org"]
        )
        regulation.constraint_id = f"cst-{table}-cap"
        regulations.append(regulation)
    return single_private_database(db, regulations, engine="plaintext")


def sharded_specs(shard_count):
    """Partition the fixed table set round-robin across ``shard_count``
    shards (matching the round-robin update stream, so load is even)."""
    tables = shard_table_names()
    specs = []
    for i in range(shard_count):
        owned = tuple(tables[i::shard_count])
        specs.append(ShardSpec(
            f"shard{i}", owned,
            functools.partial(build_shard_framework, f"shard{i}", owned),
        ))
    return specs


def make_sharded_stream(n):
    """Deterministic stream round-robining over the shard tables."""
    tables = shard_table_names()
    return [
        Update(
            table=tables[i % len(tables)], operation=UpdateOperation.INSERT,
            payload={"id": i, "org": f"org{i % 8}", "co2": 10},
            update_id=f"upd-{i:07d}",
        )
        for i in range(n)
    ]


def compare_sharded(shard_counts, n_updates):
    """Scale the same plaintext stream across shard counts.

    For each count, runs the stream through a serial-dispatch and a
    process-dispatch ``ShardedPReVer`` over the identical partitioning
    and asserts they reach identical per-update decisions and the
    identical Merkle root-of-roots (dispatch must never change an
    outcome).  Decisions are also asserted identical across shard
    counts.  Reports process-dispatch throughput and the speedup vs
    the first (baseline) shard count.
    """
    host_cpus = os.cpu_count() or 1
    results = []
    baseline_decisions = None
    for count in shard_counts:
        serial_fw = ShardedPReVer(sharded_specs(count), dispatch="serial")
        stream = make_sharded_stream(n_updates)
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            serial_results = serial_fw.submit_many(stream)
            serial_elapsed = time.perf_counter() - start
        finally:
            gc.enable()

        # Worker processes (and their in-worker frameworks) are built
        # before the timed section: steady-state throughput, not spawn
        # cost, is what sharding is priced on.
        process_fw = ShardedPReVer(sharded_specs(count), dispatch="process")
        stream = make_sharded_stream(n_updates)
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            process_results = process_fw.submit_many(stream)
            process_elapsed = time.perf_counter() - start
        finally:
            gc.enable()

        decisions = [r.applied for r in serial_results]
        assert decisions == [r.applied for r in process_results], \
            f"dispatch changed decisions at {count} shard(s)"
        serial_digest = serial_fw.digest()
        process_digest = process_fw.digest()
        assert serial_digest.root == process_digest.root, \
            f"dispatch changed the root-of-roots at {count} shard(s)"
        assert serial_digest.shard_roots == process_digest.shard_roots
        if baseline_decisions is None:
            baseline_decisions = decisions
        assert decisions == baseline_decisions, \
            f"shard count {count} changed decisions vs the baseline"

        note = ""
        if host_cpus < count:
            note = (f"host exposes {host_cpus} CPU(s) for {count} "
                    f"shard worker(s): shard fan-out cannot exceed 1x "
                    f"here; speedups reflect pure dispatch overhead")
        results.append({
            "mode": "sharded",
            "engine": "plaintext",
            "shards": count,
            "updates": n_updates,
            "host_cpus": host_cpus,
            "serial_seconds": serial_elapsed,
            "process_seconds": process_elapsed,
            "serial_per_sec": n_updates / serial_elapsed,
            "process_per_sec": n_updates / process_elapsed,
            "root_of_roots": serial_digest.root.hex(),
            "shard_sizes": list(serial_digest.shard_sizes),
            "note": note,
        })
        serial_fw.close()
        process_fw.close()
    base = results[0]["process_seconds"]
    for result in results:
        result["speedup_vs_baseline"] = base / result["process_seconds"]
    return results


# -- fast-math backend and exponentiation kernels ---------------------------

def _available_backends():
    """``["python"]`` plus ``"gmpy2"`` when importable."""
    names = ["python"]
    if math_backend._load_gmpy2() is not None:
        names.append("gmpy2")
    return names


def _timed_loop(fn, values):
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        out = [fn(v) for v in values]
        return time.perf_counter() - start, out
    finally:
        gc.enable()


def compare_backends(paillier_updates=200, kernel_ops=400, seed=1234):
    """Price the fast-math layer: backends x kernels x the Paillier path.

    Three comparisons, every one with a value-equality assert:

    * **kernels** (per backend): fixed-base table vs builtin ``pow``
      on the Schnorr-generator shape, and Straus ``multi_exp`` vs a
      product of independent ``pow`` calls on the RLC shape;
    * **verify kernel** (per backend): the Paillier CRT decrypt inner
      exponentiation on a full-size (512-bit) key — the operation the
      gmpy2 2x acceptance gate is measured on;
    * **end-to-end** (per backend): the batched Paillier pipeline on
      the same stream, asserting every backend reaches the identical
      ledger root.
    """
    rng = random.Random(seed)
    group = SchnorrGroup.default()
    exponents = [rng.randrange(1, group.q) for _ in range(kernel_ops)]
    rlc_pairs = [
        (rng.randrange(2, group.p), rng.randrange(1, 1 << 384))
        for _ in range(64)
    ]
    keypair = generate_paillier_keypair(512, rng=None)
    n_sq = keypair.public_key.n_squared
    decrypt_inputs = [
        keypair.public_key.encrypt(rng.randrange(0, 1 << 64)).value
        for _ in range(max(24, kernel_ops // 8))
    ]

    kernels, verify_kernel, paillier_rows = [], [], []
    baseline_root = None
    for name in _available_backends():
        math_backend.set_backend(name)

        # Kernel 1: fixed-base windowed table vs builtin pow, same base.
        table = FixedBaseTable(group.g, group.p, group.q.bit_length())
        pow_elapsed, pow_out = _timed_loop(
            lambda e: pow(group.g, e, group.p), exponents)
        fb_elapsed, fb_out = _timed_loop(table.pow, exponents)
        assert fb_out == pow_out, "fixed-base kernel diverged from pow"

        # Kernel 2: Straus multi-exp vs independent pows (RLC shape).
        def naive_rlc(_):
            acc = 1
            for base, exponent in rlc_pairs:
                acc = acc * pow(base, exponent, group.p) % group.p
            return acc

        naive_elapsed, naive_out = _timed_loop(naive_rlc, range(8))
        straus_elapsed, straus_out = _timed_loop(
            lambda _: multi_exp(rlc_pairs, group.p), range(8))
        assert straus_out == naive_out, "multi_exp diverged from pow product"

        kernels.append({
            "backend": name,
            "ops": kernel_ops,
            "pow_seconds": pow_elapsed,
            "fixed_base_seconds": fb_elapsed,
            "fixed_base_speedup": pow_elapsed / fb_elapsed,
            "fixed_base_entries": table.entries,
            "multi_exp_speedup": naive_elapsed / straus_elapsed,
        })

        # The Paillier verify inner op: CRT decrypt on a 512-bit key.
        dec_elapsed, dec_out = _timed_loop(
            keypair.private_key._decrypt_crt_value, decrypt_inputs)
        verify_kernel.append({
            "backend": name,
            "key_bits": 512,
            "ops": len(decrypt_inputs),
            "seconds": dec_elapsed,
            "decrypts_per_sec": len(decrypt_inputs) / dec_elapsed,
            "outputs_digest": hashlib.sha256(
                repr(dec_out).encode()).hexdigest()[:16],
        })

        # End-to-end: the batched Paillier pipeline under this backend.
        framework = build("paillier")
        framework.engine.precompute(paillier_updates)
        stream = make_stream(paillier_updates)
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            framework.submit_many(stream)
            elapsed = time.perf_counter() - start
        finally:
            gc.enable()
        root = framework.ledger.digest().root
        if baseline_root is None:
            baseline_root = root
        assert root == baseline_root, \
            f"backend {name!r} changed the ledger root"
        verify_seconds = (
            framework.throughput_report()["stages"]
            .get("verify", {}).get("total", 0.0)
            + framework.metrics.timer_total("pipeline.prepare_batch")
        )
        paillier_rows.append({
            "backend": name,
            "updates": paillier_updates,
            "seconds": elapsed,
            "per_sec": paillier_updates / elapsed,
            "verify_seconds": verify_seconds,
            "root": root.hex(),
        })
    math_backend.set_backend(None)  # back to the environment's choice

    by_backend = {r["backend"]: r for r in verify_kernel}
    assert len({r["outputs_digest"] for r in verify_kernel}) == 1, \
        "backends disagreed on decrypted plaintexts"
    result = {
        "backends": [r["backend"] for r in kernels],
        "kernels": kernels,
        "verify_kernel": verify_kernel,
        "paillier": paillier_rows,
    }
    if "gmpy2" in by_backend:
        result["gmpy2_verify_kernel_speedup"] = (
            by_backend["python"]["seconds"] / by_backend["gmpy2"]["seconds"]
        )
        end_to_end = {r["backend"]: r for r in paillier_rows}
        result["gmpy2_pipeline_speedup"] = (
            end_to_end["python"]["seconds"] / end_to_end["gmpy2"]["seconds"]
        )
    return result


# -- verify <-> anchor overlap ----------------------------------------------

def _wal_sha256(state_dir):
    """sha256 over every WAL segment, oldest first (byte-equality
    pinning between schedules)."""
    wal_dir = os.path.join(state_dir, "wal")
    digest = hashlib.sha256()
    for name in sorted(os.listdir(wal_dir)):
        with open(os.path.join(wal_dir, name), "rb") as handle:
            digest.update(handle.read())
    return digest.hexdigest()


#: Overlap pricing menu: the group-commit WAL and the snapshotting
#: variant (snapshots run inside the deferred commit, so they are the
#: best case for hiding commit latency behind verify work).
OVERLAP_MODES = [
    ("wal", lambda d: Durability.wal(d)),
    ("wal+snapshot",
     lambda d: Durability.wal_with_snapshots(d, snapshot_every=100)),
]


def _run_overlap_schedule(engine, make_policy, n_updates, chunk, pipelined):
    """One timed run of either schedule over a fresh state directory.

    Returns ``(seconds, root, wal_sha, extras)`` where extras carries
    the schedule-specific counters (fsync time resp. overlap count).
    """
    with tempfile.TemporaryDirectory(prefix="bench-overlap-") as tmp:
        framework = build(engine, durability=make_policy(tmp))
        if engine == "paillier":
            framework.engine.precompute(n_updates)
        stream = make_stream(n_updates)
        batches = [stream[i:i + chunk] for i in range(0, n_updates, chunk)]
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            if pipelined:
                framework.submit_pipelined(batches)
            else:
                for batch in batches:
                    framework.submit_many(batch)
            seconds = time.perf_counter() - start
        finally:
            gc.enable()
        framework.close()
        root = framework.ledger.digest().root
        wal_sha = _wal_sha256(tmp)
        if pipelined:
            extras = {"overlapped_commits": framework.metrics.counter_value(
                "pipeline.overlapped_commits")}
        else:
            extras = {"fsync_seconds": framework.metrics.timer_total(
                "durability.fsync")}
    return seconds, root, wal_sha, extras


def compare_overlap(engine="paillier", n_updates=240, chunk=40, repeats=3):
    """Price the pipelined scheduler: ``submit_pipelined`` (batch N+1's
    verify prep overlapping batch N's commit fsync) vs the serial
    chunked ``submit_many`` schedule, per durability mode.

    Asserts *every* overlapped run reproduces the serial schedule's
    ledger root *and its exact WAL bytes* — the overlap must be
    invisible to everything but the clock.  Timing takes the best of
    ``repeats`` runs per schedule: fsync latency on shared hosts is
    the noisiest input here, and a single unlucky serial (or lucky
    pipelined) sample would otherwise swing the ratio both ways.
    """
    results = []
    for label, make_policy in OVERLAP_MODES:
        row = {"mode": label, "engine": engine, "updates": n_updates,
               "chunk": chunk, "repeats": repeats}
        serial_root = serial_wal = None
        for schedule, key in (("serial", "serial_seconds"),
                              ("pipelined", "pipelined_seconds")):
            best = None
            for _ in range(repeats):
                seconds, root, wal_sha, extras = _run_overlap_schedule(
                    engine, make_policy, n_updates, chunk,
                    pipelined=schedule == "pipelined")
                if schedule == "serial" and serial_root is None:
                    serial_root, serial_wal = root, wal_sha
                assert root == serial_root, \
                    f"{schedule} run changed the ledger root under {label!r}"
                assert wal_sha == serial_wal, \
                    f"{schedule} run changed the WAL bytes under {label!r}"
                if best is None or seconds < best:
                    best = seconds
                    row.update(extras)
            row[key] = best

        row["serial_per_sec"] = n_updates / row["serial_seconds"]
        row["pipelined_per_sec"] = n_updates / row["pipelined_seconds"]
        row["speedup"] = row["serial_seconds"] / row["pipelined_seconds"]
        row["root"] = serial_root.hex()
        results.append(row)
    return results


# -- profiler overhead -------------------------------------------------------

def compare_profiler_overhead(engine="plaintext", n_updates=400, chunk=100,
                              repeats=3, interval=0.005, profile_out=""):
    """Price the always-on-capable sampling profiler: the same chunked
    ``submit_many`` stream with the wall-mode sampler attached vs the
    default (profiler absent) path.

    Asserts the profiled run reproduces the unprofiled ledger root (the
    observe-don't-perturb invariant), takes the best of ``repeats``
    runs per configuration, and reports the overhead ratio the <=5%
    gate binds on.  With ``profile_out`` the last profiled run's
    collapsed stacks are written there (flamegraph.pl input).
    """
    from repro.obs.profiler import SamplingProfiler

    def timed_run(profiler):
        # REPRO_PROFILE is stripped for the build: the framework ctor
        # would otherwise attach an env profiler to the "off" side and
        # the row would compare profiled against profiled.
        saved = os.environ.pop("REPRO_PROFILE", None)
        try:
            framework = build(engine)
        finally:
            if saved is not None:
                os.environ["REPRO_PROFILE"] = saved
        if profiler is not None:
            framework.profiler = profiler
            profiler.start()
        stream = make_stream(n_updates)
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            for i in range(0, n_updates, chunk):
                framework.submit_many(stream[i:i + chunk])
            seconds = time.perf_counter() - start
        finally:
            gc.enable()
            if profiler is not None:
                profiler.stop()
        return seconds, framework.ledger.digest().root

    baseline_root = None
    off_best = on_best = None
    profiler = SamplingProfiler(mode="wall", interval=interval)
    # Alternate off/on so drift (thermal, host load) hits both equally.
    for _ in range(repeats):
        off_seconds, off_root = timed_run(None)
        if baseline_root is None:
            baseline_root = off_root
        assert off_root == baseline_root
        if off_best is None or off_seconds < off_best:
            off_best = off_seconds
        on_seconds, on_root = timed_run(profiler)
        assert on_root == baseline_root, \
            "profiled run changed the ledger root"
        if on_best is None or on_seconds < on_best:
            on_best = on_seconds

    row = {
        "mode": "profiler-overhead",
        "engine": engine,
        "updates": n_updates,
        "chunk": chunk,
        "repeats": repeats,
        "profiler": profiler.describe(),
        "off_seconds": off_best,
        "on_seconds": on_best,
        "off_per_sec": n_updates / off_best,
        "on_per_sec": n_updates / on_best,
        "overhead": on_best / off_best,
        "stage_report": profiler.stage_report(),
        "root": baseline_root.hex(),
    }
    if profile_out:
        row["profile_out"] = profile_out
        row["stacks_written"] = profiler.write_collapsed(profile_out)
    return row


#: Durability pricing menu: label -> policy factory (None = off).
#: ``wal`` is the group-commit default (fsync once per anchored batch);
#: ``wal-fsync-each`` additionally fsyncs every update record (the
#: power-cut-safe worst case); ``wal+snapshot`` adds checkpoints.
DURABILITY_MODES = [
    ("off", None),
    ("wal", lambda d: Durability.wal(d)),
    ("wal-fsync-each", lambda d: Durability.wal(d, fsync_every=1)),
    ("wal+snapshot",
     lambda d: Durability.wal_with_snapshots(d, snapshot_every=100)),
]


def compare_durability(engine="plaintext", n_updates=600, chunk=100):
    """Price the crash-safety layer on the batched pipeline.

    Runs the same chunked ``submit_many`` stream under each durability
    mode, asserting the ledger root matches the durability-off run in
    every mode (the layer must not change a single decision or anchor),
    then reports per-mode throughput, overhead vs off, and the fsync /
    WAL-byte counters that explain it.
    """
    results = []
    baseline_root = None
    for label, make_policy in DURABILITY_MODES:
        with tempfile.TemporaryDirectory(prefix="bench-durable-") as tmp:
            durability = make_policy(tmp) if make_policy else None
            framework = build(engine, durability=durability)
            stream = make_stream(n_updates)
            gc.collect()
            gc.disable()
            try:
                start = time.perf_counter()
                for i in range(0, n_updates, chunk):
                    framework.submit_many(stream[i:i + chunk])
                elapsed = time.perf_counter() - start
            finally:
                gc.enable()
            root = framework.ledger.digest().root
            if baseline_root is None:
                baseline_root = root
            assert root == baseline_root, \
                f"durability mode {label!r} changed the ledger root"
            metrics = framework.metrics
            results.append({
                "mode": label,
                "engine": engine,
                "updates": n_updates,
                "chunk": chunk,
                "seconds": elapsed,
                "per_sec": n_updates / elapsed,
                "fsyncs": metrics.counter_value("durability.fsyncs"),
                "wal_records": metrics.counter_value("durability.wal_records"),
                "wal_bytes": metrics.counter_total("durability.wal_bytes"),
                "snapshots": metrics.counter_value("durability.snapshots"),
                "wal_append_seconds":
                    metrics.timer_total("durability.wal_append"),
                "fsync_seconds": metrics.timer_total("durability.fsync"),
            })
            framework.close()
    base = results[0]["seconds"]
    for result in results:
        result["overhead_vs_off"] = result["seconds"] / base
    return results


# -- encode-once layer ------------------------------------------------------

def _anchor_shaped_payloads(n):
    """Decision-record-shaped dicts (the anchor stage's actual output
    shape) for the encoder microbench."""
    return [
        {
            "update_id": f"upd-{i:07d}",
            "decision": {
                "applied": True,
                "constraint_id": "cst-emissions-cap",
                "reason": None,
                "engine": "plaintext",
            },
            "update": {
                "table": "emissions",
                "operation": "insert",
                "payload": {"id": i, "org": f"org{i % 8}", "co2": 10},
                "producers": [],
                "visibility": "private",
            },
        }
        for i in range(n)
    ]


def compare_encoding(n_payloads=2000, repeats=3, e2e_updates=600,
                     e2e_chunk=100):
    """Price the encode-once layer against the legacy encoder.

    Microbench: each anchor payload used to be canonically encoded
    three independent times per submit (signing body, Merkle leaf, WAL
    frame).  The encode-once path encodes it once with the fast encoder
    and splices the fragment (``RawJson``) into the leaf and WAL
    wrappers.  Gates (enforced in ``main``): the encode-once pattern
    must beat the legacy 3-encode pattern by >= 2x, and the uncached
    fast encoder must not lose to the legacy encoder.  Byte equality
    with the legacy encoder is asserted for every payload.

    End-to-end: a durable plaintext batched run whose ledger leaves
    and WAL frames were produced by fragment splicing, re-verified two
    ways — every Merkle leaf recomputed from scratch with the legacy
    encoder (root equality), and every WAL frame re-framed from its
    decoded record (byte equality across all segments).
    """
    from repro.common.encoding import (
        RawJson,
        encode_canonical,
        legacy_canonical_json,
    )
    from repro.crypto.merkle import MerkleTree
    from repro.durability.wal import WriteAheadLog, encode_record

    payloads = _anchor_shaped_payloads(n_payloads)
    for payload in payloads:
        assert encode_canonical(payload) == legacy_canonical_json(payload), \
            "fast encoder output diverged from the legacy encoder"

    def legacy_3x():
        # The pre-change hot path: sign body, Merkle leaf, WAL frame
        # each re-encode the payload through the legacy encoder.
        for sequence, payload in enumerate(payloads):
            legacy_canonical_json(payload)
            legacy_canonical_json(
                {"sequence": sequence, "payload": payload}
            )
            legacy_canonical_json(
                {"lsn": sequence, "type": "anchor",
                 "data": {"payloads": [payload]}}
            )

    def encode_once():
        # The new hot path: one fast encode, then fragment splices.
        for sequence, payload in enumerate(payloads):
            fragment = RawJson(encode_canonical(payload))
            encode_canonical({"sequence": sequence, "payload": fragment})
            encode_canonical(
                {"lsn": sequence, "type": "anchor",
                 "data": {"payloads": [fragment]}}
            )

    def fast_1x():
        for payload in payloads:
            encode_canonical(payload)

    def legacy_1x():
        for payload in payloads:
            legacy_canonical_json(payload)

    def best_of(fn):
        best = float("inf")
        for _ in range(repeats):
            gc.collect()
            gc.disable()
            try:
                start = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - start)
            finally:
                gc.enable()
        return best

    legacy_3x_seconds = best_of(legacy_3x)
    encode_once_seconds = best_of(encode_once)
    legacy_1x_seconds = best_of(legacy_1x)
    fast_1x_seconds = best_of(fast_1x)

    # End-to-end: durable plaintext batched run + from-scratch
    # re-verification of everything the spliced fragments produced.
    with tempfile.TemporaryDirectory(prefix="bench-encoding-") as tmp:
        framework = build("plaintext", durability=Durability.wal(tmp))
        stream = make_stream(e2e_updates)
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            for i in range(0, e2e_updates, e2e_chunk):
                framework.submit_many(stream[i:i + e2e_chunk])
            e2e_elapsed = time.perf_counter() - start
        finally:
            gc.enable()
        framework.close()
        root = framework.ledger.digest().root

        # Root equality: recompute every leaf with the legacy encoder.
        shadow = MerkleTree(
            legacy_canonical_json(
                {"sequence": entry.sequence, "payload": entry.payload}
            ).encode("utf-8")
            for entry in framework.ledger.entries()
        )
        assert shadow.root() == root, \
            "spliced Merkle leaves diverged from legacy re-encoding"

        # WAL byte equality: re-frame every decoded record and compare
        # against the segment bytes on disk.
        wal_sha = _wal_sha256(tmp)
        reader = WriteAheadLog(os.path.join(tmp, "wal"))
        reframed = hashlib.sha256()
        n_records = 0
        for lsn, record_type, data in reader.records():
            reframed.update(encode_record(lsn, record_type, data))
            n_records += 1
        reader.close()
        assert n_records == 0 or reframed.hexdigest() == wal_sha, \
            "spliced WAL frames diverged from plain re-framing"

    return {
        "payloads": n_payloads,
        "repeats": repeats,
        "legacy_3x_seconds": legacy_3x_seconds,
        "encode_once_seconds": encode_once_seconds,
        "encode_once_speedup": legacy_3x_seconds / encode_once_seconds,
        "legacy_1x_seconds": legacy_1x_seconds,
        "fast_1x_seconds": fast_1x_seconds,
        "fast_encoder_speedup": legacy_1x_seconds / fast_1x_seconds,
        "e2e_engine": "plaintext",
        "e2e_updates": e2e_updates,
        "e2e_chunk": e2e_chunk,
        "e2e_seconds": e2e_elapsed,
        "e2e_per_sec": e2e_updates / e2e_elapsed,
        "e2e_root": root.hex(),
        "e2e_wal_sha256": wal_sha,
        "e2e_wal_records": n_records,
    }


def run_batch_comparison(plaintext_updates=1000, paillier_updates=300,
                         out_path="BENCH_pipeline.json", workers=4,
                         parallel_updates=None, include_parallel=True,
                         include_durability=False, durability_updates=600,
                         shard_counts=(), sharded_updates=2000,
                         include_backends=True, backend_updates=200,
                         include_overlap=False, overlap_updates=240,
                         overlap_chunk=40, include_profiler=True,
                         profiler_updates=400, profile_out="",
                         include_encoding=True, encoding_payloads=2000,
                         encoding_updates=600):
    results = []
    for engine in BATCH_ENGINES:
        n = plaintext_updates if engine == "plaintext" else paillier_updates
        results.append(compare_batched_vs_sequential(engine, n))
    parallel = []
    if include_parallel:
        parallel.append(compare_parallel_vs_serial(
            engine="paillier",
            n_updates=parallel_updates or paillier_updates,
            workers=workers,
        ))
    durability = []
    if include_durability:
        durability = compare_durability(n_updates=durability_updates)
    sharded = []
    if shard_counts:
        sharded = compare_sharded(list(shard_counts), sharded_updates)
    backends = {}
    if include_backends:
        backends = compare_backends(paillier_updates=backend_updates)
    overlap = []
    if include_overlap:
        overlap = compare_overlap(n_updates=overlap_updates,
                                  chunk=overlap_chunk)
    profiler = {}
    if include_profiler:
        profiler = compare_profiler_overhead(n_updates=profiler_updates,
                                             profile_out=profile_out)
    encoding = {}
    if include_encoding:
        encoding = compare_encoding(n_payloads=encoding_payloads,
                                    e2e_updates=encoding_updates)
    artifact = {
        "experiment": "E1-batched",
        "description": "batched (submit_many) vs sequential (submit) "
                       "Figure-2 pipeline throughput, plus the multicore "
                       "execution layer (process pool) vs serial on the "
                       "Paillier verify path, the fast-math backend and "
                       "exponentiation kernels (fixed-base, multi-exp) "
                       "against builtin pow, plus (opt-in) the pipelined "
                       "verify/anchor overlap schedule, the durability "
                       "layer's fsync cost per mode and the sharded "
                       "front-end's scaling across shard counts, plus "
                       "the sampling profiler's overhead row (on vs "
                       "off, same stream, <=5% gate), and the "
                       "encode-once layer (fast canonical encoder + "
                       "fragment splicing) against the legacy "
                       "3-encodes-per-submit pattern with byte-equality "
                       "asserts on roots and WAL frames",
        "results": results,
        "parallel": parallel,
        "durability": durability,
        "sharded": sharded,
        "backends": backends,
        "overlap": overlap,
        "profiler": profiler,
        "encoding": encoding,
    }
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2)
    return artifact


def batch_rows(artifact):
    return [
        [
            r["engine"], r["updates"],
            f"{r['sequential_per_sec']:.0f}/s",
            f"{r['batched_per_sec']:.0f}/s",
            f"{r['speedup']:.1f}x",
            f"{r['verify_share'] * 100:.0f}%",
            _latency_cell(r, "p50"),
            _latency_cell(r, "p99"),
        ]
        for r in artifact["results"]
    ]


def _latency_cell(result, quantile):
    """Verify-stage per-update latency cell (ms) for the batch table."""
    stats = result.get("batched_stage_latency", {}).get("verify")
    return f"{stats[quantile] * 1e3:.3f}ms" if stats else "-"


BATCH_HEADERS = ["engine", "updates", "sequential", "batched", "speedup",
                 "verify-share", "verify-p50", "verify-p99"]


def print_profiler_table(artifact):
    r = artifact.get("profiler") or {}
    if not r:
        return
    print_table(
        "E1-profiler: wall-mode sampling overhead (submit_many, "
        "profiler on vs off)",
        ["engine", "updates", "off", "on", "overhead", "samples"],
        [[
            r["engine"], r["updates"],
            f"{r['off_per_sec']:.0f}/s",
            f"{r['on_per_sec']:.0f}/s",
            f"{(r['overhead'] - 1.0) * 100:+.1f}%",
            str(r["profiler"]["samples"]),
        ]],
    )
    if r.get("profile_out"):
        print(f"wrote {r['stacks_written']} collapsed stacks to "
              f"{r['profile_out']}")


def print_encoding_table(artifact):
    r = artifact.get("encoding") or {}
    if not r:
        return
    print_table(
        "E1-encoding: encode-once (fast encoder + splice) vs legacy "
        "3-encodes-per-submit",
        ["payloads", "legacy-3x", "encode-once", "speedup",
         "fast-1x", "e2e-plaintext"],
        [[
            r["payloads"],
            f"{r['legacy_3x_seconds'] * 1e3:.1f}ms",
            f"{r['encode_once_seconds'] * 1e3:.1f}ms",
            f"{r['encode_once_speedup']:.1f}x",
            f"{r['fast_encoder_speedup']:.2f}x",
            f"{r['e2e_per_sec']:.0f}/s",
        ]],
    )


def backend_rows(artifact):
    backends = artifact.get("backends") or {}
    kernels = {k["backend"]: k for k in backends.get("kernels", [])}
    verify = {v["backend"]: v for v in backends.get("verify_kernel", [])}
    return [
        [
            r["backend"], r["updates"],
            f"{r['per_sec']:.0f}/s",
            f"{verify[r['backend']]['decrypts_per_sec']:.0f}/s",
            f"{kernels[r['backend']]['fixed_base_speedup']:.2f}x",
            f"{kernels[r['backend']]['multi_exp_speedup']:.2f}x",
        ]
        for r in backends.get("paillier", [])
    ]


def print_backend_table(artifact):
    rows = backend_rows(artifact)
    if not rows:
        return
    print_table(
        "E1-backend: fast-math backends and exponentiation kernels",
        ["backend", "updates", "paillier", "crt-decrypt",
         "fixed-base", "multi-exp"],
        rows,
    )
    backends = artifact["backends"]
    if "gmpy2_verify_kernel_speedup" in backends:
        print(f"gmpy2 verify-kernel speedup: "
              f"{backends['gmpy2_verify_kernel_speedup']:.2f}x "
              f"(pipeline: {backends['gmpy2_pipeline_speedup']:.2f}x)")


def overlap_rows(artifact):
    return [
        [
            r["mode"], r["updates"],
            f"{r['serial_per_sec']:.0f}/s",
            f"{r['pipelined_per_sec']:.0f}/s",
            f"{r['speedup']:.2f}x",
            str(r["overlapped_commits"]),
        ]
        for r in artifact.get("overlap", [])
    ]


def print_overlap_table(artifact):
    rows = overlap_rows(artifact)
    if not rows:
        return
    print_table(
        "E1-overlap: pipelined verify/anchor schedule vs serial "
        "(submit_pipelined, paillier)",
        ["mode", "updates", "serial", "pipelined", "speedup",
         "overlapped"],
        rows,
    )


def parallel_rows(artifact):
    return [
        [
            r["engine"], r["updates"],
            f"{r['workers']}w/{r['host_cpus']}cpu",
            f"{r['serial_per_sec']:.0f}/s",
            f"{r['parallel_per_sec']:.0f}/s",
            f"{r['speedup']:.2f}x",
            (f"{r['verify_stage_speedup']:.2f}x"
             if r.get("verify_stage_speedup") else "-"),
        ]
        for r in artifact.get("parallel", [])
    ]


def print_parallel_table(artifact):
    rows = parallel_rows(artifact)
    if not rows:
        return
    print_table(
        "E1-parallel: process-pool vs serial executor (submit_many)",
        ["engine", "updates", "workers", "serial", "parallel",
         "wall-speedup", "verify-speedup"],
        rows,
    )
    for r in artifact.get("parallel", []):
        if r.get("note"):
            print(f"note: {r['note']}")


def sharded_rows(artifact):
    return [
        [
            str(r["shards"]), r["updates"],
            f"{r['serial_per_sec']:.0f}/s",
            f"{r['process_per_sec']:.0f}/s",
            f"{r['speedup_vs_baseline']:.2f}x",
            r["root_of_roots"][:12],
        ]
        for r in artifact.get("sharded", [])
    ]


def print_sharded_table(artifact):
    rows = sharded_rows(artifact)
    if not rows:
        return
    print_table(
        "E1-sharded: table-partitioned front-end (process dispatch)",
        ["shards", "updates", "serial", "process",
         "speedup-vs-base", "root-of-roots"],
        rows,
    )
    for r in artifact.get("sharded", []):
        if r.get("note"):
            print(f"note: {r['note']}")


def durability_rows(artifact):
    return [
        [
            r["mode"], r["updates"],
            f"{r['per_sec']:.0f}/s",
            f"{r['overhead_vs_off']:.2f}x",
            str(r["fsyncs"]),
            f"{r['wal_bytes'] / 1024:.0f}KiB" if r["wal_bytes"] else "-",
            str(r["snapshots"]) if r["snapshots"] else "-",
        ]
        for r in artifact.get("durability", [])
    ]


def print_durability_table(artifact):
    rows = durability_rows(artifact)
    if not rows:
        return
    print_table(
        "E1-durability: crash-safety cost per mode (submit_many, plaintext)",
        ["mode", "updates", "throughput", "overhead", "fsyncs",
         "wal-bytes", "snapshots"],
        rows,
    )


try:
    import pytest
except ImportError:  # standalone invocation needs no pytest
    pytest = None


if pytest is not None:

    @pytest.mark.parametrize("engine", ENGINES)
    def test_pipeline_update_cost(benchmark, engine):
        framework = build(engine)
        benchmark.pedantic(one_update, args=(framework,), rounds=10,
                           iterations=3, warmup_rounds=1)

    def test_pipeline_report(benchmark, capsys):
        """Prints the E1 summary row set (stage timings per engine)."""
        rows = []

        def sweep():
            rows.clear()
            for engine in ENGINES:
                framework = build(engine)
                start = time.perf_counter()
                n = 20
                for _ in range(n):
                    one_update(framework)
                elapsed = time.perf_counter() - start
                verify_mean = framework.engine.metrics.timer(
                    f"{framework.engine.name}.check"
                ).mean
                rows.append([
                    engine,
                    f"{n / elapsed:.0f}/s",
                    f"{verify_mean * 1e3:.3f}ms",
                    f"{framework.acceptance_rate():.2f}",
                ])

        benchmark.pedantic(sweep, rounds=1, iterations=1)
        with capsys.disabled():
            print_table(
                "E1: Figure-2 pipeline, per-engine",
                ["engine", "throughput", "verify-mean", "accept-rate"],
                rows,
            )

    def test_pipeline_batched_report(benchmark, capsys):
        """E1-batched: submit_many vs submit, plaintext and Paillier.

        Writes BENCH_pipeline.json and asserts the batched plaintext
        path clears the 5x bar on a 1k-update run.
        """
        artifact = {}

        def sweep():
            artifact.update(run_batch_comparison(
                plaintext_updates=1000, paillier_updates=300,
            ))

        benchmark.pedantic(sweep, rounds=1, iterations=1)
        with capsys.disabled():
            print_table(
                "E1-batched: submit_many vs submit",
                BATCH_HEADERS,
                batch_rows(artifact),
            )
            print_backend_table(artifact)
        by_engine = {r["engine"]: r for r in artifact["results"]}
        assert by_engine["plaintext"]["speedup"] >= 5.0
        assert by_engine["paillier"]["speedup"] >= 1.0
        # The crypto-heavy path is verify-dominated; the batched report
        # must expose that share explicitly.
        assert 0.0 < by_engine["paillier"]["verify_share"] <= 1.0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="batched vs sequential pipeline throughput"
    )
    parser.add_argument("--updates", type=int, default=1000,
                        help="plaintext-engine stream length")
    parser.add_argument("--paillier-updates", type=int, default=300,
                        help="paillier-engine stream length")
    parser.add_argument("--executor", choices=["serial", "process"],
                        default="process",
                        help="execution layer for the parallel comparison "
                             "row ('serial' skips that row entirely)")
    parser.add_argument("--workers", type=int, default=4,
                        help="process-pool worker count for the parallel "
                             "comparison row")
    parser.add_argument("--out", default="BENCH_pipeline.json",
                        help="artifact path ('' to skip writing)")
    parser.add_argument("--metrics-out", default="",
                        help="also write the batched plaintext run's "
                             "metrics in the repro.obs.export JSON schema")
    parser.add_argument("--durability", action="store_true",
                        help="also price the crash-safety layer: the same "
                             "stream under durability off / wal / "
                             "wal-fsync-each / wal+snapshot, asserting the "
                             "ledger root never changes")
    parser.add_argument("--durability-updates", type=int, default=600,
                        help="stream length for the durability comparison")
    parser.add_argument("--shards", type=int, nargs="+", default=[],
                        metavar="N",
                        help="also scale the plaintext stream across a "
                             "table-partitioned ShardedPReVer at each given "
                             "shard count (e.g. --shards 1 2 4), asserting "
                             "serial and process dispatch agree on every "
                             "decision and on the Merkle root-of-roots")
    parser.add_argument("--sharded-updates", type=int, default=2000,
                        help="stream length for the sharded comparison")
    parser.add_argument("--no-backends", action="store_true",
                        help="skip the fast-math backend/kernel comparison")
    parser.add_argument("--backend-updates", type=int, default=200,
                        help="Paillier stream length per backend for the "
                             "backend comparison")
    parser.add_argument("--overlap", action="store_true",
                        help="also price the pipelined verify/anchor "
                             "overlap schedule (submit_pipelined) against "
                             "serial chunked submit_many, asserting ledger "
                             "root and WAL bytes are identical")
    parser.add_argument("--overlap-updates", type=int, default=240,
                        help="stream length for the overlap comparison")
    parser.add_argument("--overlap-chunk", type=int, default=40,
                        help="batch size for the overlap comparison")
    parser.add_argument("--no-profiler", action="store_true",
                        help="skip the sampling-profiler overhead row")
    parser.add_argument("--profiler-updates", type=int, default=400,
                        help="stream length for the profiler overhead row")
    parser.add_argument("--profile-out", default="",
                        help="write the profiled run's collapsed stacks "
                             "(flamegraph.pl input) to this path")
    parser.add_argument("--no-encoding", action="store_true",
                        help="skip the encode-once layer comparison")
    parser.add_argument("--encoding-payloads", type=int, default=2000,
                        help="payload count for the encoder microbench")
    parser.add_argument("--encoding-updates", type=int, default=600,
                        help="stream length for the encode-once "
                             "end-to-end row")
    parser.add_argument("--smoke", action="store_true",
                        help="small streams; assert batched is not slower")
    args = parser.parse_args(argv)
    if args.updates <= 0 or args.paillier_updates <= 0 \
            or args.durability_updates <= 0 or args.sharded_updates <= 0 \
            or args.backend_updates <= 0 or args.overlap_updates <= 0 \
            or args.overlap_chunk <= 0 or args.profiler_updates <= 0 \
            or args.encoding_payloads <= 0 or args.encoding_updates <= 0:
        parser.error("stream lengths must be positive")
    if args.workers <= 0:
        parser.error("--workers must be positive")
    if any(count <= 0 for count in args.shards):
        parser.error("--shards counts must be positive")
    if any(count > SHARD_TABLE_COUNT for count in args.shards):
        parser.error(f"--shards counts above {SHARD_TABLE_COUNT} would "
                     f"leave shards without tables")

    if args.smoke:
        args.updates = min(args.updates, 300)
        args.paillier_updates = min(args.paillier_updates, 100)
        args.durability_updates = min(args.durability_updates, 200)
        args.sharded_updates = min(args.sharded_updates, 400)
        args.backend_updates = min(args.backend_updates, 60)
        args.overlap_updates = min(args.overlap_updates, 120)
        args.profiler_updates = min(args.profiler_updates, 200)
        args.encoding_payloads = min(args.encoding_payloads, 500)
        args.encoding_updates = min(args.encoding_updates, 200)

    artifact = run_batch_comparison(
        plaintext_updates=args.updates,
        paillier_updates=args.paillier_updates,
        out_path=args.out,
        workers=args.workers,
        include_parallel=(args.executor == "process"),
        include_durability=args.durability,
        durability_updates=args.durability_updates,
        shard_counts=args.shards,
        sharded_updates=args.sharded_updates,
        include_backends=not args.no_backends,
        backend_updates=args.backend_updates,
        include_overlap=args.overlap,
        overlap_updates=args.overlap_updates,
        overlap_chunk=args.overlap_chunk,
        include_profiler=not args.no_profiler,
        profiler_updates=args.profiler_updates,
        profile_out=args.profile_out,
        include_encoding=not args.no_encoding,
        encoding_payloads=args.encoding_payloads,
        encoding_updates=args.encoding_updates,
    )
    print_table(
        "E1-batched: submit_many vs submit",
        BATCH_HEADERS,
        batch_rows(artifact),
    )
    print_encoding_table(artifact)
    print_backend_table(artifact)
    print_overlap_table(artifact)
    print_parallel_table(artifact)
    print_sharded_table(artifact)
    print_durability_table(artifact)
    print_profiler_table(artifact)
    if args.out:
        print(f"\nwrote {args.out}")
    if args.metrics_out:
        by_engine = {r["engine"]: r["batched_metrics"]
                     for r in artifact["results"]}
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            json.dump(by_engine, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.metrics_out}")

    for result in artifact["results"]:
        if result["speedup"] < 1.0:
            raise SystemExit(
                f"batched path slower than sequential for "
                f"{result['engine']} ({result['speedup']:.2f}x)"
            )
    backends = artifact.get("backends") or {}
    for kernel in backends.get("kernels", []):
        # The fixed-base gate: even the pure-python table must beat the
        # builtin C pow on the generator shape (that is the whole point
        # of the kernel); the Straus kernel likewise.
        if kernel["backend"] == "python" \
                and kernel["fixed_base_speedup"] < 1.0:
            raise SystemExit(
                f"pure-python fixed-base kernel slower than builtin pow "
                f"({kernel['fixed_base_speedup']:.2f}x)"
            )
    if "gmpy2_verify_kernel_speedup" in backends \
            and backends["gmpy2_verify_kernel_speedup"] < 2.0:
        # Binds only when gmpy2 is importable (the CI gmpy2 job).
        raise SystemExit(
            f"gmpy2 Paillier verify kernel speedup "
            f"{backends['gmpy2_verify_kernel_speedup']:.2f}x below the "
            f"2x bar"
        )
    for result in artifact.get("overlap", []):
        # On hosts where fsync is effectively free (fast container
        # filesystems) there is nothing to hide and the pipelined
        # schedule can only pay its thread-handoff cost, so this is a
        # no-pathological-regression floor, not a speedup bar — the
        # win itself shows up wherever fsync_seconds is material.
        if result["speedup"] < 0.85:
            raise SystemExit(
                f"pipelined overlap schedule slower than serial under "
                f"{result['mode']!r} ({result['speedup']:.2f}x)"
            )
    encoding_row = artifact.get("encoding") or {}
    if encoding_row:
        # The tentpole gate: one fast encode + fragment splices must
        # beat the legacy 3-encodes-per-submit pattern by >= 2x.
        if encoding_row["encode_once_speedup"] < 2.0:
            raise SystemExit(
                f"encode-once speedup "
                f"{encoding_row['encode_once_speedup']:.2f}x below the "
                f"2x bar"
            )
        # Regression floor: the uncached fast encoder must never lose
        # to the legacy encoder on the anchor-payload shape.
        if encoding_row["fast_encoder_speedup"] < 1.0:
            raise SystemExit(
                f"fast encoder slower than the legacy encoder "
                f"({encoding_row['fast_encoder_speedup']:.2f}x)"
            )
    profiler_row = artifact.get("profiler") or {}
    if profiler_row and not args.smoke and profiler_row["overhead"] > 1.05:
        # The always-on promise: sampling must cost <= 5% of the
        # unprofiled throughput (best-of-N on both sides filters host
        # noise; smoke streams are too short to measure this fairly).
        raise SystemExit(
            f"profiler overhead {(profiler_row['overhead'] - 1) * 100:.1f}% "
            f"above the 5% bar"
        )
    if not args.smoke:
        plaintext = next(r for r in artifact["results"]
                         if r["engine"] == "plaintext")
        if plaintext["speedup"] < 5.0:
            raise SystemExit(
                f"plaintext batched speedup {plaintext['speedup']:.2f}x "
                f"below the 5x bar"
            )
        for result in artifact.get("parallel", []):
            # The 2x verify-stage bar only binds when the host can
            # actually run the workers concurrently; capped hosts
            # document the cap in the artifact's ``note`` instead.
            if (result["host_cpus"] >= result["workers"]
                    and (result.get("verify_stage_speedup") or 0.0) < 2.0):
                raise SystemExit(
                    f"parallel verify-stage speedup "
                    f"{result['verify_stage_speedup']:.2f}x below the 2x bar "
                    f"at {result['workers']} workers on "
                    f"{result['host_cpus']} CPUs"
                )
        for result in artifact.get("sharded", []):
            # Same CPU caveat: the 2x-at-4-shards bar only binds on
            # hosts that can run 4 shard workers concurrently.
            if (result["shards"] >= 4
                    and result["host_cpus"] >= result["shards"]
                    and result["speedup_vs_baseline"] < 2.0):
                raise SystemExit(
                    f"sharded speedup {result['speedup_vs_baseline']:.2f}x "
                    f"at {result['shards']} shards below the 2x bar on "
                    f"{result['host_cpus']} CPUs"
                )
    return artifact


if __name__ == "__main__":
    main()
