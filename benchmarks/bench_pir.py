"""E7 (RC3): PIR read/write cost vs. database size.

The classic IT-vs-computational trade-off: the 2-server XOR scheme is
nearly free computationally but needs two non-colluding servers; the
single-server Paillier scheme pays n ciphertext operations per query.
Private writes are measured too — the RC3 extension.
"""

import pytest

from repro.privacy.pir import PaillierPIR, TwoServerXorPIR

from _report import print_table


def records(n):
    return [f"rec-{i}".encode() for i in range(n)]


@pytest.mark.parametrize("n", [256, 1024, 4096])
def test_xor_pir_read(benchmark, n):
    pir = TwoServerXorPIR(records(n), record_size=32)
    benchmark.pedantic(lambda: pir.read(n // 2), rounds=5, iterations=1)


@pytest.mark.parametrize("n", [64, 256])
def test_paillier_pir_read(benchmark, n, paillier_keys):
    pir = PaillierPIR(list(range(n)), keypair=paillier_keys)
    benchmark.pedantic(lambda: pir.read(n // 2), rounds=3, iterations=1)


@pytest.mark.parametrize("n", [256, 1024])
def test_xor_pir_private_write(benchmark, n):
    pir = TwoServerXorPIR(records(n), record_size=32)

    def write_and_merge():
        pir.write(n // 3, b"new")
        pir.merge_epoch()

    benchmark.pedantic(write_and_merge, rounds=3, iterations=1)


def test_pir_scaling_report(benchmark, capsys, paillier_keys):
    import time

    rows = []

    def sweep():
        rows.clear()
        for n in (256, 1024, 4096):
            pir = TwoServerXorPIR(records(n), record_size=32)
            start = time.perf_counter()
            for _ in range(5):
                pir.read(n // 2)
            xor_cost = (time.perf_counter() - start) / 5
            if n <= 1024:
                cpir = PaillierPIR(list(range(n)), keypair=paillier_keys)
                start = time.perf_counter()
                cpir.read(n // 2)
                paillier_cost = time.perf_counter() - start
                paillier_text = f"{paillier_cost * 1e3:,.1f}ms"
            else:
                paillier_text = "(skipped)"
            rows.append([n, f"{xor_cost * 1e6:,.0f}us", paillier_text])

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print_table(
            "E7: PIR read cost vs database size",
            ["records", "2-server XOR", "1-server Paillier"],
            rows,
        )
