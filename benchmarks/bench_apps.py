"""E13 (Figure 1): one row per motivating application.

Each application runs its canned scenario end to end; the row reports
throughput, acceptance rate, and the privacy mechanism exercised —
the "applications" panel of the reproduction.
"""

import pytest

from repro.apps.conference import ConferenceRegistration
from repro.apps.crowdworking import CrowdworkingScenario
from repro.apps.supplychain import SLA, SupplyChainNetwork
from repro.apps.sustainability import SustainabilityCertification

from _report import print_table


def run_sustainability():
    cert = SustainabilityCertification("acme", tier="gold")
    accepted = sum(
        cert.report("energy", amount).accepted
        for amount in [60, 60, 60, 60, 60]
    )
    return accepted, 5


def run_conference():
    conference = ConferenceRegistration(
        {f"guest{i}": (i % 3 != 0) for i in range(12)}
    )
    accepted = sum(
        conference.register_in_person(f"guest{i}").accepted
        for i in range(12)
    )
    return accepted, 12


def run_crowdworking():
    scenario = CrowdworkingScenario(workers=4, seed=77)
    summary = scenario.run_week(tasks_per_worker=12)
    assert scenario.no_worker_exceeded_cap()
    return summary.tasks_accepted, summary.tasks_attempted


def run_supplychain():
    network = SupplyChainNetwork(["a", "b"])
    network.agree_sla(SLA("a", "b", 100, window=60.0))
    accepted = sum(network.ship("a", "b", 30) for _ in range(5))
    assert network.verify_integrity("a")
    return accepted, 5


APPS = {
    "sustainability (1a)": (run_sustainability, "paillier"),
    "conference (1b)": (run_conference, "2-server PIR"),
    "crowdworking (1c)": (run_crowdworking, "blind tokens + chain"),
    "supply chain (1d)": (run_supplychain, "qanaat collaborations"),
}


@pytest.mark.parametrize("name", list(APPS))
def test_application_scenario(benchmark, name):
    runner, _ = APPS[name]
    benchmark.pedantic(runner, rounds=2, iterations=1)


def test_apps_report(benchmark, capsys):
    import time

    rows = []

    def sweep():
        rows.clear()
        for name, (runner, mechanism) in APPS.items():
            start = time.perf_counter()
            accepted, attempted = runner()
            elapsed = time.perf_counter() - start
            rows.append([
                name, mechanism, f"{attempted / elapsed:,.0f} upd/s",
                f"{accepted}/{attempted}",
            ])

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print_table(
            "E13: the four Figure-1 applications",
            ["application", "mechanism", "throughput", "accepted"],
            rows,
        )
